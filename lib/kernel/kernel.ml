(* The kernel: frame allocation, the program loader (which applies the
   executable's section keys to page-table entries), syscall servicing —
   including the key-aware mmap/mprotect — and trap triage.

   Two kernel variants exist, mirroring the paper's system matrix:
   [roload_kernel = false] is the stock kernel (no key plumbing, no ROLoad
   fault triage); [roload_kernel = true] is the modified kernel of §III-B.
   Kernel work is charged to the machine's cycle counter through a small
   cost model so the "processor+kernel modified" system of §V-B shows its
   (tiny) load-time key-setup overhead as a measurement, not an
   assumption. *)

module Perm = Roload_mem.Perm
module Page_table = Roload_mem.Page_table
module Mmu = Roload_mem.Mmu
module Phys_mem = Roload_mem.Phys_mem
module Machine = Roload_machine.Machine
module Cpu = Roload_machine.Cpu
module Trap = Roload_machine.Trap
module Config = Roload_machine.Config
module Exe = Roload_obj.Exe
module Reg = Roload_isa.Reg

type config = {
  roload_kernel : bool;
  syscall_cycles : int; (* trap entry/exit + dispatch *)
  page_map_cycles : int; (* per page mapped by the loader/mmap *)
  page_key_cycles : int; (* extra per page whose key is set (modified kernel) *)
  fault_cycles : int; (* page-fault handling before the process dies *)
}

let default_config =
  {
    roload_kernel = true;
    syscall_cycles = 80;
    page_map_cycles = 25;
    page_key_cycles = 2;
    fault_cycles = 400;
  }

let stock_kernel_config = { default_config with roload_kernel = false }

type t = {
  machine : Machine.t;
  config : config;
  mutable next_frame : int;
  mutable current : Process.t option;
  mutable syscall_count : int;
}

exception Out_of_frames

let create ~machine ~config =
  (* frame 0 stays unused so a PPN of 0 is never valid *)
  { machine; config; next_frame = 1; current = None; syscall_count = 0 }

let machine t = t.machine
let config t = t.config
let syscall_count t = t.syscall_count

(* ---- snapshots ----

   The kernel itself only owns two counters; the scheduled process and
   the machine snapshot at their own layers.  [fork] builds a sibling
   kernel over a forked machine; [adopt] installs a forked process
   without the pc/sp reset (and cache flush) [schedule] performs — the
   forked CPU and caches already hold the captured state. *)

type image = {
  ik_next_frame : int;
  ik_syscall_count : int;
}

let snapshot t = { ik_next_frame = t.next_frame; ik_syscall_count = t.syscall_count }

let restore t img =
  t.next_frame <- img.ik_next_frame;
  t.syscall_count <- img.ik_syscall_count

let fork img ~machine ~config =
  {
    machine;
    config;
    next_frame = img.ik_next_frame;
    current = None;
    syscall_count = img.ik_syscall_count;
  }

let adopt t process =
  t.current <- Some process;
  Machine.attach_mmu t.machine (Process.mmu process)

(* Events ride the machine's tracer; the kernel and CPU share one
   timeline (kernel work is charged to the machine cycle counter). *)
let emit t ev =
  match Machine.tracer t.machine with
  | None -> ()
  | Some tr -> Roload_obs.Tracer.emit tr ev

let charge t cycles = Cpu.add_cycles (Machine.cpu t.machine) cycles

let alloc_frame t =
  let mem = Machine.mem t.machine in
  let frames = Phys_mem.size mem / Page_table.page_size in
  if t.next_frame >= frames then raise Out_of_frames;
  let f = t.next_frame in
  t.next_frame <- t.next_frame + 1;
  Phys_mem.fill mem ~addr:(f * Page_table.page_size) ~len:Page_table.page_size '\000';
  f

(* ---------- loader ---------- *)

let effective_key t key = if t.config.roload_kernel then key else 0

let map_fresh_page t process ~va ~perms ~key =
  let ppn = alloc_frame t in
  Page_table.map_page (Process.page_table process) ~va ~ppn ~perms ~user:true
    ~key:(effective_key t key);
  Process.account_mapped process 1;
  charge t t.config.page_map_cycles;
  if t.config.roload_kernel && key <> 0 then charge t t.config.page_key_cycles;
  ppn

let load t exe =
  let mem = Machine.mem t.machine in
  let page_table = Page_table.create ~mem ~alloc_frame:(fun () -> alloc_frame t) in
  let machine_config = Machine.config t.machine in
  let mmu =
    Mmu.create ~page_table ~itlb_entries:machine_config.Config.itlb_entries
      ~dtlb_entries:machine_config.Config.dtlb_entries
      ~roload_check_enabled:machine_config.Config.roload_processor
  in
  let brk_start = ref 0 in
  let process = Process.create ~exe ~page_table ~mmu ~phys:mem ~brk:0 in
  (* map segments page by page, copying data *)
  List.iter
    (fun (seg : Exe.segment) ->
      let npages = Exe.segment_pages seg in
      for i = 0 to npages - 1 do
        let va = seg.Exe.vaddr + (i * Page_table.page_size) in
        let ppn = map_fresh_page t process ~va ~perms:seg.Exe.perms ~key:seg.Exe.key in
        let data_off = i * Page_table.page_size in
        let remaining = String.length seg.Exe.data - data_off in
        if remaining > 0 then begin
          let chunk = min remaining Page_table.page_size in
          Phys_mem.write_string mem ~addr:(ppn * Page_table.page_size)
            (String.sub seg.Exe.data data_off chunk)
        end
      done;
      brk_start := max !brk_start (seg.Exe.vaddr + (npages * Page_table.page_size)))
    exe.Exe.segments;
  Process.init_brk process !brk_start;
  (* map the stack *)
  let stack_base = Process.stack_top - (Process.stack_pages * Page_table.page_size) in
  for i = 0 to Process.stack_pages - 1 do
    ignore
      (map_fresh_page t process ~va:(stack_base + (i * Page_table.page_size)) ~perms:Perm.rw
         ~key:0)
  done;
  process

(* Install the process on the machine and initialize its CPU state. *)
let schedule t process =
  t.current <- Some process;
  Machine.set_mmu t.machine (Some (Process.mmu process));
  let cpu = Machine.cpu t.machine in
  Cpu.set_pc cpu (Process.exe process).Exe.entry;
  Cpu.set cpu Reg.sp (Int64.of_int (Process.stack_top - 64))

(* ---------- syscalls ---------- *)

let handle_brk t process new_brk =
  let old_brk = Process.brk process in
  if new_brk <= old_brk then old_brk
  else begin
    let first = Roload_util.Bits.align_up old_brk Page_table.page_size in
    let last = Roload_util.Bits.align_up new_brk Page_table.page_size in
    let n = (last - first) / Page_table.page_size in
    (try
       for i = 0 to n - 1 do
         ignore
           (map_fresh_page t process ~va:(first + (i * Page_table.page_size)) ~perms:Perm.rw
              ~key:0)
       done;
       Process.set_brk process new_brk
     with Out_of_frames -> ());
    Process.brk process
  end

let handle_mmap t process ~len ~prot ~key =
  if len <= 0 then Syscall.einval
  else if key <> 0 && not t.config.roload_kernel then Syscall.enosys
  else begin
    let npages = (len + Page_table.page_size - 1) / Page_table.page_size in
    let addr = Process.alloc_mmap_region process npages in
    try
      for i = 0 to npages - 1 do
        ignore
          (map_fresh_page t process ~va:(addr + (i * Page_table.page_size))
             ~perms:(Syscall.perms_of_prot prot) ~key)
      done;
      addr
    with Out_of_frames -> Syscall.enomem
  end

let handle_mprotect t process ~addr ~len ~prot ~key =
  if addr land (Page_table.page_size - 1) <> 0 || len < 0 then Syscall.einval
  else if key <> 0 && not t.config.roload_kernel then Syscall.enosys
  else begin
    let npages = (len + Page_table.page_size - 1) / Page_table.page_size in
    let ok = ref true in
    for i = 0 to npages - 1 do
      let va = addr + (i * Page_table.page_size) in
      let page_table = Process.page_table process in
      (match Page_table.set_perms page_table ~va ~perms:(Syscall.perms_of_prot prot) with
      | Ok () -> ()
      | Error (Page_table.Not_mapped | Page_table.Bad_alignment) -> ok := false);
      if t.config.roload_kernel then begin
        match Page_table.set_key page_table ~va ~key with
        | Ok () -> charge t t.config.page_key_cycles
        | Error (Page_table.Not_mapped | Page_table.Bad_alignment) -> ok := false
      end;
      Mmu.invalidate (Process.mmu process) ~va
    done;
    if !ok then 0 else Syscall.einval
  end

let handle_write t process ~buf ~len =
  if len < 0 then Syscall.einval
  else begin
    (match
       (* copy out through the page table; faults here kill the process in
          a real kernel, we clamp to the mapped region *)
       try Some (Process.read_bytes process ~va:buf ~len) with Not_found -> None
     with
    | Some s -> Process.append_output process s
    | None -> ());
    charge t (len / 16);
    len
  end

let handle_syscall t process =
  let cpu = Machine.cpu t.machine in
  let arg r = Int64.to_int (Cpu.get cpu r) in
  charge t t.config.syscall_cycles;
  t.syscall_count <- t.syscall_count + 1;
  let num = arg Reg.a7 in
  let ret =
    if num = Syscall.sys_exit then begin
      Process.set_status process (Process.Exited (arg Reg.a0));
      0
    end
    else if num = Syscall.sys_write then handle_write t process ~buf:(arg Reg.a1) ~len:(arg Reg.a2)
    else if num = Syscall.sys_brk then handle_brk t process (arg Reg.a0)
    else if num = Syscall.sys_mmap then
      handle_mmap t process ~len:(arg Reg.a1) ~prot:(arg Reg.a2) ~key:(arg Reg.a4)
    else if num = Syscall.sys_mprotect then
      handle_mprotect t process ~addr:(arg Reg.a0) ~len:(arg Reg.a1) ~prot:(arg Reg.a2)
        ~key:(arg Reg.a3)
    else Syscall.enosys
  in
  emit t (Roload_obs.Event.Syscall { number = num; name = Syscall.name num; ret });
  Cpu.set cpu Reg.a0 (Int64.of_int ret);
  (* resume after the ecall (ecall is never compressed) *)
  Cpu.set_pc cpu (Cpu.pc cpu + 4)

(* ---------- trap triage ---------- *)

(* The fault path of the modified kernel (§III-B): ROLoad faults are
   distinguished from benign load faults and the process is killed with a
   SIGSEGV carrying the triage detail.  The stock kernel cannot decode the
   new fault class; it reports a plain access violation. *)
let signal_of_trap t (trap : Trap.t) : Signal.t option =
  match trap with
  | Trap.Ecall -> None
  | Trap.Breakpoint -> None
  | Trap.Illegal_instruction { pc; info } -> Some (Signal.Sigill { pc; info })
  | Trap.Misaligned_access { va; _ } -> Some (Signal.Sigbus { va })
  | Trap.Fetch_page_fault { va; _ } ->
    Some (Signal.Sigsegv (Signal.Access_violation { va; access = Perm.Fetch }))
  | Trap.Load_page_fault { va; _ } ->
    Some (Signal.Sigsegv (Signal.Access_violation { va; access = Perm.Load }))
  | Trap.Store_page_fault { va; _ } ->
    Some (Signal.Sigsegv (Signal.Access_violation { va; access = Perm.Store }))
  | Trap.Roload_page_fault { pc; va; key_requested; page_key; page_perms } ->
    if t.config.roload_kernel then
      Some
        (Signal.Sigsegv
           (Signal.Roload_violation { va; pc; key_requested; page_key; page_perms }))
    else
      (* stock kernel: same mechanical outcome (the access did fault), but
         without the dedicated triage *)
      Some (Signal.Sigsegv (Signal.Access_violation { va; access = Perm.Load }))

let triage_kind (signal : Signal.t) =
  match signal with
  | Signal.Sigill _ -> "sigill"
  | Signal.Sigbus _ -> "sigbus"
  | Signal.Sigsegv (Signal.Roload_violation _) -> "roload"
  | Signal.Sigsegv (Signal.Access_violation _) -> "segv"

let trap_pc (trap : Trap.t) =
  match trap with
  | Trap.Ecall | Trap.Breakpoint -> 0
  | Trap.Illegal_instruction { pc; _ }
  | Trap.Misaligned_access { pc; _ }
  | Trap.Fetch_page_fault { pc; _ }
  | Trap.Load_page_fault { pc; _ }
  | Trap.Store_page_fault { pc; _ }
  | Trap.Roload_page_fault { pc; _ } ->
    pc

(* ---------- run loop ---------- *)

type run_limit = { max_instructions : int64 }

let no_limit = { max_instructions = Int64.max_int }

type run_outcome = {
  status : Process.status;
  instructions : int64;
  cycles : int64;
  peak_kib : int;
  output : string;
}

let outcome_of t process =
  let cpu = Machine.cpu t.machine in
  {
    status = Process.status process;
    instructions = Cpu.instret cpu;
    cycles = Cpu.cycles cpu;
    peak_kib = Process.peak_kib process;
    output = Process.output process;
  }

(* Run the scheduled process until it exits, is killed, or hits a
   caller-supplied stop condition (used by the attack tooling to pause at
   a chosen pc). *)
let run ?(limit = no_limit) ?stop_at_pc t process =
  let cpu = Machine.cpu t.machine in
  let rec loop () =
    if Process.status process <> Process.Running then outcome_of t process
    else
      let remaining = Int64.sub limit.max_instructions (Cpu.instret cpu) in
      if Int64.compare remaining 0L <= 0 then outcome_of t process
      else
        (* hand the machine a fuel budget so it can run whole blocks
           between kernel checks *)
        let fuel =
          if Int64.compare remaining (Int64.of_int max_int) >= 0 then max_int
          else Int64.to_int remaining
        in
        match Machine.run_steps ?stop_at_pc ~fuel t.machine with
        | Machine.Exhausted -> loop () (* limit re-checked above *)
        | Machine.Stop_pc -> outcome_of t process
        | Machine.Trap Trap.Ecall ->
          handle_syscall t process;
          loop ()
        | Machine.Trap Trap.Breakpoint ->
          (* treat ebreak as an abort: kill the process *)
          emit t (Roload_obs.Event.Fault_triage { kind = "sigill"; pc = Cpu.pc cpu });
          Process.set_status process
            (Process.Killed (Signal.Sigill { pc = Cpu.pc cpu; info = "ebreak" }));
          outcome_of t process
        | Machine.Trap trap -> (
          charge t t.config.fault_cycles;
          match signal_of_trap t trap with
          | Some signal ->
            emit t
              (Roload_obs.Event.Fault_triage
                 { kind = triage_kind signal; pc = trap_pc trap });
            Process.set_status process (Process.Killed signal);
            outcome_of t process
          | None -> loop ())
  in
  loop ()

(* Convenience: load, schedule, run. *)
let exec ?(limit = no_limit) t exe =
  let process = load t exe in
  schedule t process;
  let outcome = run ~limit t process in
  (process, outcome)
