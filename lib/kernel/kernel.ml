(* The kernel: frame allocation, the program loader (which applies the
   executable's section keys to page-table entries), syscall servicing —
   including the key-aware mmap/mprotect — and trap triage.

   Two kernel variants exist, mirroring the paper's system matrix:
   [roload_kernel = false] is the stock kernel (no key plumbing, no ROLoad
   fault triage); [roload_kernel = true] is the modified kernel of §III-B.
   Kernel work is charged to the machine's cycle counter through a small
   cost model so the "processor+kernel modified" system of §V-B shows its
   (tiny) load-time key-setup overhead as a measurement, not an
   assumption. *)

module Perm = Roload_mem.Perm
module Page_table = Roload_mem.Page_table
module Mmu = Roload_mem.Mmu
module Phys_mem = Roload_mem.Phys_mem
module Machine = Roload_machine.Machine
module Cpu = Roload_machine.Cpu
module Trap = Roload_machine.Trap
module Config = Roload_machine.Config
module Exe = Roload_obj.Exe
module Reg = Roload_isa.Reg

type config = {
  roload_kernel : bool;
  syscall_cycles : int; (* trap entry/exit + dispatch *)
  page_map_cycles : int; (* per page mapped by the loader/mmap *)
  page_key_cycles : int; (* extra per page whose key is set (modified kernel) *)
  fault_cycles : int; (* page-fault handling before the process dies *)
  context_switch_cycles : int; (* scheduler: save/restore + address-space swap *)
  queue_cycles_per_waiter : int;
      (* request-device contention: serialization charged per hand-out for
         every other live worker assigned to the same shard *)
}

let default_config =
  {
    roload_kernel = true;
    syscall_cycles = 80;
    page_map_cycles = 25;
    page_key_cycles = 2;
    fault_cycles = 400;
    context_switch_cycles = 120;
    queue_cycles_per_waiter = 4;
  }

let stock_kernel_config = { default_config with roload_kernel = false }

(* ---- the process table ----

   A task is the scheduler's view of a process: its saved register file,
   its lifecycle state, and the request it is currently serving (if any).
   The classic states apply — ready, blocked in wait(), zombie (exited
   but unreaped), reaped. *)

type task_state =
  | Task_ready
  | Task_waiting (* blocked in wait(); pc still points at the ecall *)
  | Task_waiting_req (* blocked in read_request until a redelivery or drain *)
  | Task_zombie of int (* terminal status awaiting a parent's wait() *)
  | Task_reaped

(* A supervised worker's birth certificate: a pristine clone of its
   address space taken at fork time, plus the registers/pc it was born
   with.  Reincarnation clones a fresh address space from [b_proc] (the
   template itself is never scheduled and never mutated), so a restart
   starts from exactly the state the first incarnation did — tamper
   applied to a dead incarnation's PTEs/TLB/globals dies with it. *)
type birth = {
  b_proc : Process.t;
  b_regs : int64 array;
  b_pc : int;
}

type task = {
  pid : int;
  parent : int; (* 0 for the root task, which has no parent *)
  mutable proc : Process.t; (* replaced wholesale on reincarnation *)
  t_regs : int64 array; (* saved register file (32 slots) *)
  mutable t_pc : int;
  mutable t_state : task_state;
  mutable t_inflight : int; (* request id being served; -1 when none *)
  mutable t_req_start : int64; (* cycle stamp when the request was handed out *)
  mutable t_asid : int;
      (* trace-table owner; starts as pid, refreshed on reincarnation
         because compiled traces capture the MMU of the address space
         they were compiled under and ASIDs must never be reused *)
  mutable t_restarts : int; (* reincarnations consumed by this pid *)
  mutable t_birth : birth option; (* present iff forked under supervision *)
}

(* Supervision policy for forked workers: [max_restarts] bounds
   per-worker reincarnations; [deadline_cycles] > 0 arms the per-request
   watchdog (a worker whose inflight request is older than the deadline
   is killed at the next scheduler entry — deterministic, because cycle
   counts at kernel entries are exact across engines). *)
type supervision = {
  max_restarts : int;
  deadline_cycles : int64; (* 0 = no deadline watchdog *)
}

type t = {
  machine : Machine.t;
  config : config;
  mutable next_frame : int;
  mutable current : Process.t option;
  mutable syscall_count : int;
  (* multi-process state (empty/unused in single-process runs) *)
  mutable tasks : task list; (* pid-ascending; the round-robin order *)
  mutable next_pid : int;
  mutable scheduled : task option; (* whose registers live in the CPU *)
  console : Buffer.t; (* interleaved write() output of every task *)
  (* the simulated request-source device, sharded: pending ids live in
     per-shard FIFO queues (id mod shards); workers pull from their own
     shard first and steal in deterministic order when it runs dry *)
  mutable req_stream : int array; (* payloads, by request id *)
  mutable req_queues : int Queue.t array; (* pending ids per shard *)
  mutable req_done : int; (* requests completed *)
  mutable req_latencies : int64 array; (* by request id; -1 = unfinished *)
  (* per-request delivery accounting (at-least-once bookkeeping) *)
  mutable req_handouts : int array;
  mutable req_redeliveries : int array;
  mutable req_completions : int array;
  mutable req_has_result : bool array; (* an explicit ack committed a result *)
  mutable req_result : int64 array; (* first committed result *)
  mutable req_diverged : bool array; (* a later ack committed a different result *)
  mutable inflight_count : int; (* handed out, not yet acked *)
  mutable handouts_total : int; (* hand-outs across all requests (trigger clock) *)
  mutable committed_sum : int64; (* fold of first results, mod 1_000_003 *)
  mutable supervision : supervision option;
  mutable restart_count : int; (* reincarnations across all pids *)
  mutable req_hook : (int * (t -> unit)) option;
      (* one-shot chaos trigger: fires inside read_request just before
         hand-out number [at] (deterministic across engines) *)
  (* frames shared read-only across address spaces after fork, with the
     number of address spaces referencing them (only entries >= 2 are
     kept); mprotect splits a shared frame before granting write access *)
  frame_refs : (int, int) Hashtbl.t;
}

exception Out_of_frames

let create ~machine ~config =
  (* frame 0 stays unused so a PPN of 0 is never valid *)
  {
    machine;
    config;
    next_frame = 1;
    current = None;
    syscall_count = 0;
    tasks = [];
    next_pid = 1;
    scheduled = None;
    console = Buffer.create 256;
    req_stream = [||];
    req_queues = [||];
    req_done = 0;
    req_latencies = [||];
    req_handouts = [||];
    req_redeliveries = [||];
    req_completions = [||];
    req_has_result = [||];
    req_result = [||];
    req_diverged = [||];
    inflight_count = 0;
    handouts_total = 0;
    committed_sum = 0L;
    supervision = None;
    restart_count = 0;
    req_hook = None;
    frame_refs = Hashtbl.create 64;
  }

let machine t = t.machine
let config t = t.config
let syscall_count t = t.syscall_count

(* ---- snapshots ----

   The kernel itself only owns two counters; the scheduled process and
   the machine snapshot at their own layers.  [fork] builds a sibling
   kernel over a forked machine; [adopt] installs a forked process
   without the pc/sp reset (and cache flush) [schedule] performs — the
   forked CPU and caches already hold the captured state. *)

type image = {
  ik_next_frame : int;
  ik_syscall_count : int;
}

let snapshot t = { ik_next_frame = t.next_frame; ik_syscall_count = t.syscall_count }

let restore t img =
  t.next_frame <- img.ik_next_frame;
  t.syscall_count <- img.ik_syscall_count

let fork img ~machine ~config =
  {
    machine;
    config;
    next_frame = img.ik_next_frame;
    current = None;
    syscall_count = img.ik_syscall_count;
    tasks = [];
    next_pid = 1;
    scheduled = None;
    console = Buffer.create 256;
    req_stream = [||];
    req_queues = [||];
    req_done = 0;
    req_latencies = [||];
    req_handouts = [||];
    req_redeliveries = [||];
    req_completions = [||];
    req_has_result = [||];
    req_result = [||];
    req_diverged = [||];
    inflight_count = 0;
    handouts_total = 0;
    committed_sum = 0L;
    supervision = None;
    restart_count = 0;
    req_hook = None;
    frame_refs = Hashtbl.create 64;
  }

let adopt t process =
  t.current <- Some process;
  Machine.attach_mmu t.machine (Process.mmu process)

(* Events ride the machine's tracer; the kernel and CPU share one
   timeline (kernel work is charged to the machine cycle counter). *)
let emit t ev =
  match Machine.tracer t.machine with
  | None -> ()
  | Some tr -> Roload_obs.Tracer.emit tr ev

let charge t cycles = Cpu.add_cycles (Machine.cpu t.machine) cycles

let alloc_frame t =
  let mem = Machine.mem t.machine in
  let frames = Phys_mem.size mem / Page_table.page_size in
  if t.next_frame >= frames then raise Out_of_frames;
  let f = t.next_frame in
  t.next_frame <- t.next_frame + 1;
  Phys_mem.fill mem ~addr:(f * Page_table.page_size) ~len:Page_table.page_size '\000';
  f

(* ---------- loader ---------- *)

let effective_key t key = if t.config.roload_kernel then key else 0

let map_fresh_page t process ~va ~perms ~key =
  let ppn = alloc_frame t in
  Page_table.map_page (Process.page_table process) ~va ~ppn ~perms ~user:true
    ~key:(effective_key t key);
  Process.account_mapped process 1;
  charge t t.config.page_map_cycles;
  if t.config.roload_kernel && key <> 0 then charge t t.config.page_key_cycles;
  ppn

let load t exe =
  let mem = Machine.mem t.machine in
  let page_table = Page_table.create ~mem ~alloc_frame:(fun () -> alloc_frame t) in
  let machine_config = Machine.config t.machine in
  let mmu =
    Mmu.create ~page_table ~itlb_entries:machine_config.Config.itlb_entries
      ~dtlb_entries:machine_config.Config.dtlb_entries
      ~roload_check_enabled:machine_config.Config.roload_processor
  in
  let brk_start = ref 0 in
  let process = Process.create ~exe ~page_table ~mmu ~phys:mem ~brk:0 in
  (* map segments page by page, copying data *)
  List.iter
    (fun (seg : Exe.segment) ->
      let npages = Exe.segment_pages seg in
      for i = 0 to npages - 1 do
        let va = seg.Exe.vaddr + (i * Page_table.page_size) in
        let ppn = map_fresh_page t process ~va ~perms:seg.Exe.perms ~key:seg.Exe.key in
        let data_off = i * Page_table.page_size in
        let remaining = String.length seg.Exe.data - data_off in
        if remaining > 0 then begin
          let chunk = min remaining Page_table.page_size in
          Phys_mem.write_string mem ~addr:(ppn * Page_table.page_size)
            (String.sub seg.Exe.data data_off chunk)
        end
      done;
      brk_start := max !brk_start (seg.Exe.vaddr + (npages * Page_table.page_size)))
    exe.Exe.segments;
  Process.init_brk process !brk_start;
  (* map the stack *)
  let stack_base = Process.stack_top - (Process.stack_pages * Page_table.page_size) in
  for i = 0 to Process.stack_pages - 1 do
    ignore
      (map_fresh_page t process ~va:(stack_base + (i * Page_table.page_size)) ~perms:Perm.rw
         ~key:0)
  done;
  process

(* Install the process on the machine and initialize its CPU state. *)
let schedule t process =
  t.current <- Some process;
  Machine.set_mmu t.machine (Some (Process.mmu process));
  let cpu = Machine.cpu t.machine in
  Cpu.set_pc cpu (Process.exe process).Exe.entry;
  Cpu.set cpu Reg.sp (Int64.of_int (Process.stack_top - 64))

(* ---------- syscalls ---------- *)

(* Unwind a partially mapped fresh region: unmap whatever got mapped and
   roll the page accounting back, so a failed brk/mmap is all-or-nothing
   as far as the address space and the accounting are concerned.  The
   data frames already allocated leak — this kernel never frees frames,
   and intermediate page-table frames allocated along the way may since
   have become live for other mappings — which wastes simulated physical
   memory but can never alias a future mapping. *)
let unwind_fresh_range process ~first_va ~npages ~accounting =
  let page_table = Process.page_table process in
  let mapped, peak = accounting in
  for i = 0 to npages - 1 do
    let va = first_va + (i * Page_table.page_size) in
    match Page_table.walk page_table va with
    | Ok _ ->
      Page_table.unmap_page page_table ~va;
      Mmu.invalidate (Process.mmu process) ~va
    | Error (Page_table.Not_mapped | Page_table.Bad_alignment) -> ()
  done;
  Process.rollback_accounting process ~mapped ~peak

let handle_brk t process new_brk =
  let old_brk = Process.brk process in
  if new_brk <= old_brk then old_brk
  else begin
    let first = Roload_util.Bits.align_up old_brk Page_table.page_size in
    let last = Roload_util.Bits.align_up new_brk Page_table.page_size in
    let n = (last - first) / Page_table.page_size in
    let accounting = Process.accounting process in
    (try
       for i = 0 to n - 1 do
         ignore
           (map_fresh_page t process ~va:(first + (i * Page_table.page_size)) ~perms:Perm.rw
              ~key:0)
       done;
       Process.set_brk process new_brk
     with Out_of_frames ->
       (* failed grows leave no half-mapped pages behind *)
       unwind_fresh_range process ~first_va:first ~npages:n ~accounting);
    Process.brk process
  end

let handle_mmap t process ~len ~prot ~key =
  if len <= 0 then Syscall.einval
  else if key <> 0 && not t.config.roload_kernel then Syscall.enosys
  else begin
    let npages = (len + Page_table.page_size - 1) / Page_table.page_size in
    match Process.alloc_mmap_region process npages with
    | None -> Syscall.enomem (* the region would cross the stack guard *)
    | Some addr -> (
      let accounting = Process.accounting process in
      try
        for i = 0 to npages - 1 do
          ignore
            (map_fresh_page t process ~va:(addr + (i * Page_table.page_size))
               ~perms:(Syscall.perms_of_prot prot) ~key)
        done;
        addr
      with Out_of_frames ->
        unwind_fresh_range process ~first_va:addr ~npages ~accounting;
        Process.retract_mmap_region process ~addr ~npages;
        Syscall.enomem)
  end

(* Copy-on-mprotect: a frame shared read-only across address spaces
   (fork) must be split before any process gains write access to it, or
   the writes would leak into the sibling address spaces.  Returns true
   when it installed a private copy (with the final perms/key). *)
let split_shared_frame t process ~va ~pte ~perms ~key =
  let ppn = Roload_mem.Pte.ppn pte in
  match Hashtbl.find_opt t.frame_refs ppn with
  | Some refs when refs >= 2 ->
    let mem = Machine.mem t.machine in
    let ps = Page_table.page_size in
    let fresh = alloc_frame t in
    Phys_mem.write_string mem ~addr:(fresh * ps)
      (Phys_mem.read_string mem ~addr:(ppn * ps) ~len:ps);
    Page_table.map_page (Process.page_table process) ~va ~ppn:fresh ~perms ~user:true ~key;
    if refs = 2 then Hashtbl.remove t.frame_refs ppn
    else Hashtbl.replace t.frame_refs ppn (refs - 1);
    charge t t.config.page_map_cycles;
    true
  | _ -> false

let handle_mprotect t process ~addr ~len ~prot ~key =
  if addr land (Page_table.page_size - 1) <> 0 || len < 0 then Syscall.einval
  else if key <> 0 && not t.config.roload_kernel then Syscall.enosys
  else begin
    let npages = (len + Page_table.page_size - 1) / Page_table.page_size in
    let page_table = Process.page_table process in
    (* validate the whole range up front: mprotect is all-or-nothing, so
       a failing call must leave every PTE exactly as it was *)
    let valid = ref true in
    for i = 0 to npages - 1 do
      match Page_table.walk page_table (addr + (i * Page_table.page_size)) with
      | Ok _ -> ()
      | Error (Page_table.Not_mapped | Page_table.Bad_alignment) -> valid := false
    done;
    if not !valid then Syscall.einval
    else begin
      let perms = Syscall.perms_of_prot prot in
      for i = 0 to npages - 1 do
        let va = addr + (i * Page_table.page_size) in
        let split =
          perms.Perm.w
          &&
          match Page_table.walk page_table va with
          | Ok { pte; _ } ->
            split_shared_frame t process ~va ~pte ~perms ~key:(effective_key t key)
          | Error _ -> false
        in
        if not split then begin
          (match Page_table.set_perms page_table ~va ~perms with
          | Ok () -> ()
          | Error _ -> assert false (* validated above *));
          if t.config.roload_kernel then
            match Page_table.set_key page_table ~va ~key with
            | Ok () -> ()
            | Error _ -> assert false
        end;
        if t.config.roload_kernel then charge t t.config.page_key_cycles;
        Mmu.invalidate (Process.mmu process) ~va
      done;
      0
    end
  end

let handle_write t process ~buf ~len =
  if len < 0 then Syscall.einval
  else begin
    (* copy out through the page table; an unmapped byte anywhere in the
       buffer fails the whole write with EFAULT — nothing is copied and
       no copy cycles are charged *)
    match Process.read_bytes process ~va:buf ~len with
    | s ->
      Process.append_output process s;
      Buffer.add_string t.console s;
      charge t (len / 16);
      len
    | exception Not_found -> Syscall.efault
  end

let handle_syscall t process =
  let cpu = Machine.cpu t.machine in
  let arg r = Int64.to_int (Cpu.get cpu r) in
  charge t t.config.syscall_cycles;
  t.syscall_count <- t.syscall_count + 1;
  let num = arg Reg.a7 in
  let ret =
    if num = Syscall.sys_exit then begin
      Process.set_status process (Process.Exited (arg Reg.a0));
      0
    end
    else if num = Syscall.sys_write then handle_write t process ~buf:(arg Reg.a1) ~len:(arg Reg.a2)
    else if num = Syscall.sys_brk then handle_brk t process (arg Reg.a0)
    else if num = Syscall.sys_mmap then
      handle_mmap t process ~len:(arg Reg.a1) ~prot:(arg Reg.a2) ~key:(arg Reg.a4)
    else if num = Syscall.sys_mprotect then
      handle_mprotect t process ~addr:(arg Reg.a0) ~len:(arg Reg.a1) ~prot:(arg Reg.a2)
        ~key:(arg Reg.a3)
    else Syscall.enosys
  in
  emit t (Roload_obs.Event.Syscall { number = num; name = Syscall.name num; ret });
  Cpu.set cpu Reg.a0 (Int64.of_int ret);
  (* resume after the ecall (ecall is never compressed) *)
  Cpu.set_pc cpu (Cpu.pc cpu + 4)

(* ---------- trap triage ---------- *)

(* The fault path of the modified kernel (§III-B): ROLoad faults are
   distinguished from benign load faults and the process is killed with a
   SIGSEGV carrying the triage detail.  The stock kernel cannot decode the
   new fault class; it reports a plain access violation. *)
let signal_of_trap t (trap : Trap.t) : Signal.t option =
  match trap with
  | Trap.Ecall -> None
  | Trap.Breakpoint -> None
  | Trap.Illegal_instruction { pc; info } -> Some (Signal.Sigill { pc; info })
  | Trap.Misaligned_access { va; _ } -> Some (Signal.Sigbus { va })
  | Trap.Fetch_page_fault { va; _ } ->
    Some (Signal.Sigsegv (Signal.Access_violation { va; access = Perm.Fetch }))
  | Trap.Load_page_fault { va; _ } ->
    Some (Signal.Sigsegv (Signal.Access_violation { va; access = Perm.Load }))
  | Trap.Store_page_fault { va; _ } ->
    Some (Signal.Sigsegv (Signal.Access_violation { va; access = Perm.Store }))
  | Trap.Roload_page_fault { pc; va; key_requested; page_key; page_perms } ->
    if t.config.roload_kernel then
      Some
        (Signal.Sigsegv
           (Signal.Roload_violation { va; pc; key_requested; page_key; page_perms }))
    else
      (* stock kernel: same mechanical outcome (the access did fault), but
         without the dedicated triage *)
      Some (Signal.Sigsegv (Signal.Access_violation { va; access = Perm.Load }))

let triage_kind (signal : Signal.t) =
  match signal with
  | Signal.Sigill _ -> "sigill"
  | Signal.Sigbus _ -> "sigbus"
  | Signal.Sigsegv (Signal.Roload_violation _) -> "roload"
  | Signal.Sigsegv (Signal.Access_violation _) -> "segv"
  | Signal.Sigkill _ -> "kill"

let trap_pc (trap : Trap.t) =
  match trap with
  | Trap.Ecall | Trap.Breakpoint -> 0
  | Trap.Illegal_instruction { pc; _ }
  | Trap.Misaligned_access { pc; _ }
  | Trap.Fetch_page_fault { pc; _ }
  | Trap.Load_page_fault { pc; _ }
  | Trap.Store_page_fault { pc; _ }
  | Trap.Roload_page_fault { pc; _ } ->
    pc

(* ---------- run loop ---------- *)

type run_limit = { max_instructions : int64 }

let no_limit = { max_instructions = Int64.max_int }

type run_outcome = {
  status : Process.status;
  instructions : int64;
  cycles : int64;
  peak_kib : int;
  output : string;
}

let outcome_of t process =
  let cpu = Machine.cpu t.machine in
  {
    status = Process.status process;
    instructions = Cpu.instret cpu;
    cycles = Cpu.cycles cpu;
    peak_kib = Process.peak_kib process;
    output = Process.output process;
  }

(* Run the scheduled process until it exits, is killed, or hits a
   caller-supplied stop condition (used by the attack tooling to pause at
   a chosen pc). *)
let run ?(limit = no_limit) ?stop_at_pc t process =
  let cpu = Machine.cpu t.machine in
  let rec loop () =
    if Process.status process <> Process.Running then outcome_of t process
    else
      let remaining = Int64.sub limit.max_instructions (Cpu.instret cpu) in
      if Int64.compare remaining 0L <= 0 then outcome_of t process
      else
        (* hand the machine a fuel budget so it can run whole blocks
           between kernel checks *)
        let fuel =
          if Int64.compare remaining (Int64.of_int max_int) >= 0 then max_int
          else Int64.to_int remaining
        in
        match Machine.run_steps ?stop_at_pc ~fuel t.machine with
        | Machine.Exhausted -> loop () (* limit re-checked above *)
        | Machine.Stop_pc -> outcome_of t process
        | Machine.Trap Trap.Ecall ->
          handle_syscall t process;
          loop ()
        | Machine.Trap Trap.Breakpoint ->
          (* treat ebreak as an abort: kill the process *)
          emit t (Roload_obs.Event.Fault_triage { kind = "sigill"; pc = Cpu.pc cpu });
          Process.set_status process
            (Process.Killed (Signal.Sigill { pc = Cpu.pc cpu; info = "ebreak" }));
          outcome_of t process
        | Machine.Trap trap -> (
          charge t t.config.fault_cycles;
          match signal_of_trap t trap with
          | Some signal ->
            emit t
              (Roload_obs.Event.Fault_triage
                 { kind = triage_kind signal; pc = trap_pc trap });
            Process.set_status process (Process.Killed signal);
            outcome_of t process
          | None -> loop ())
  in
  loop ()

(* Convenience: load, schedule, run. *)
let exec ?(limit = no_limit) t exe =
  let process = load t exe in
  schedule t process;
  let outcome = run ~limit t process in
  (process, outcome)

(* ---------- multi-process scheduling ---------- *)

let console t = Buffer.contents t.console

let set_requests ?(shards = 1) t payloads =
  let shards = max 1 shards in
  let n = Array.length payloads in
  t.req_stream <- Array.copy payloads;
  t.req_queues <- Array.init shards (fun _ -> Queue.create ());
  for id = 0 to n - 1 do
    Queue.push id t.req_queues.(id mod shards)
  done;
  t.req_done <- 0;
  t.req_latencies <- Array.make n (-1L);
  t.req_handouts <- Array.make n 0;
  t.req_redeliveries <- Array.make n 0;
  t.req_completions <- Array.make n 0;
  t.req_has_result <- Array.make n false;
  t.req_result <- Array.make n 0L;
  t.req_diverged <- Array.make n false;
  t.inflight_count <- 0;
  t.handouts_total <- 0;
  t.committed_sum <- 0L

let requests_served t = t.req_done

let request_latencies t =
  Array.of_seq (Seq.filter (fun l -> l >= 0L) (Array.to_seq t.req_latencies))

(* Per-request delivery record (the availability table's raw material). *)
type request_record = {
  rr_payload : int;
  rr_handouts : int;
  rr_redeliveries : int;
  rr_completions : int;
  rr_result : int64 option; (* first explicitly committed result *)
  rr_diverged : bool; (* a later ack committed a different result *)
  rr_latency : int64; (* hand-out -> first completion, cycles; -1 = never *)
}

let request_records t =
  Array.init (Array.length t.req_stream) (fun id ->
      {
        rr_payload = t.req_stream.(id);
        rr_handouts = t.req_handouts.(id);
        rr_redeliveries = t.req_redeliveries.(id);
        rr_completions = t.req_completions.(id);
        rr_result = (if t.req_has_result.(id) then Some t.req_result.(id) else None);
        rr_diverged = t.req_diverged.(id);
        rr_latency = t.req_latencies.(id);
      })

let server_checksum t = t.committed_sum
let set_supervision t sup = t.supervision <- sup
let restarts_total t = t.restart_count
let set_request_hook t ~at hook = t.req_hook <- Some (max 0 at, hook)

let task_statuses t = List.map (fun tk -> (tk.pid, Process.status tk.proc)) t.tasks
let task_restarts t = List.map (fun tk -> (tk.pid, tk.t_restarts)) t.tasks
let find_task t pid = List.find_opt (fun tk -> tk.pid = pid) t.tasks
let task_process t pid = Option.map (fun tk -> tk.proc) (find_task t pid)

let task_inflight t pid =
  match find_task t pid with Some tk -> tk.t_inflight | None -> -1

let worker_pids t =
  List.filter_map (fun tk -> if tk.parent <> 0 then Some tk.pid else None) t.tasks

let kill_task t ~pid ~info =
  match find_task t pid with
  | Some tk
    when (match tk.t_state with Task_zombie _ | Task_reaped -> false | _ -> true)
         && Process.status tk.proc = Process.Running ->
    Process.set_status tk.proc (Process.Killed (Signal.Sigkill { info }));
    true
  | _ -> false

(* Fork the parent's address space inside the same physical memory.
   Writable pages are copied eagerly ("copy on fork" — cheap at these
   address-space sizes); read-only pages — text, rodata, the GFPT —
   share the parent's frame under a reference count, so the PA-keyed
   decode/block caches stay warm across the fork and a later
   mprotect-to-writable knows to split the frame first. *)
let clone_address_space t parent =
  let mem = Machine.mem t.machine in
  let ps = Page_table.page_size in
  let parent_pt = Process.page_table parent in
  let page_table = Page_table.create ~mem ~alloc_frame:(fun () -> alloc_frame t) in
  Page_table.iter_mappings parent_pt ~f:(fun ~va ~pte ->
      let ppn = Roload_mem.Pte.ppn pte in
      let child_ppn =
        if Roload_mem.Pte.writable pte then begin
          let fresh = alloc_frame t in
          Phys_mem.write_string mem ~addr:(fresh * ps)
            (Phys_mem.read_string mem ~addr:(ppn * ps) ~len:ps);
          fresh
        end
        else begin
          (match Hashtbl.find_opt t.frame_refs ppn with
          | Some n -> Hashtbl.replace t.frame_refs ppn (n + 1)
          | None -> Hashtbl.replace t.frame_refs ppn 2);
          ppn
        end
      in
      let key = Roload_mem.Pte.key pte in
      Page_table.map_page page_table ~va ~ppn:child_ppn
        ~perms:(Roload_mem.Pte.perms pte) ~user:(Roload_mem.Pte.user pte) ~key;
      charge t t.config.page_map_cycles;
      if t.config.roload_kernel && key <> 0 then charge t t.config.page_key_cycles);
  page_table

let clone_process t parent =
  let page_table = clone_address_space t parent in
  let machine_config = Machine.config t.machine in
  let mmu =
    Mmu.create ~page_table ~itlb_entries:machine_config.Config.itlb_entries
      ~dtlb_entries:machine_config.Config.dtlb_entries
      ~roload_check_enabled:machine_config.Config.roload_processor
  in
  let child =
    Process.fork (Process.snapshot parent) ~exe:(Process.exe parent) ~page_table ~mmu
      ~phys:(Machine.mem t.machine)
  in
  Process.clear_output child;
  child

let new_task t ~pid ~parent proc ~regs ~pc =
  let tk =
    {
      pid;
      parent;
      proc;
      t_regs = Array.copy regs;
      t_pc = pc;
      t_state = Task_ready;
      t_inflight = -1;
      t_req_start = 0L;
      t_asid = pid;
      t_restarts = 0;
      t_birth = None;
    }
  in
  t.tasks <- t.tasks @ [ tk ];
  tk

(* Register an already-loaded process as the root task of a scheduler
   run, reusing [schedule]'s pc/sp setup. *)
let spawn_root t process =
  schedule t process;
  let cpu = Machine.cpu t.machine in
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  let tk = new_task t ~pid ~parent:0 process ~regs:(Cpu.regs cpu) ~pc:(Cpu.pc cpu) in
  (* bind the machine's live compiled-trace table to this address space *)
  Machine.switch_context t.machine ~asid:pid ~mmu:(Process.mmu process);
  t.scheduled <- Some tk

let context_switch t tk =
  match t.scheduled with
  | Some cur when cur == tk -> ()
  | prev ->
    let cpu = Machine.cpu t.machine in
    (match prev with
    | Some cur ->
      Array.blit (Cpu.regs cpu) 0 cur.t_regs 0 32;
      cur.t_pc <- Cpu.pc cpu
    | None -> ());
    Array.blit tk.t_regs 0 (Cpu.regs cpu) 0 32;
    Cpu.set_pc cpu tk.t_pc;
    Machine.switch_context t.machine ~asid:tk.t_asid ~mmu:(Process.mmu tk.proc);
    t.scheduled <- Some tk;
    t.current <- Some tk.proc;
    charge t t.config.context_switch_cycles

(* How many requests are still queued across every shard. *)
let pending_requests t = Array.fold_left (fun acc q -> acc + Queue.length q) 0 t.req_queues

(* Wake every task blocked in read_request: a redelivery gave them work,
   or the stream drained and they must observe the -1. *)
let wake_req_waiters t =
  List.iter
    (fun tk -> if tk.t_state = Task_waiting_req then tk.t_state <- Task_ready)
    t.tasks

(* Ack the request [tk] is serving.  The first completion stamps the
   latency and counts the request served; an explicit ack ([result])
   additionally commits the result into the device's order-independent
   checksum (first committed result wins — later duplicates only set the
   divergence flag).  Implicit acks (next read_request, clean exit)
   carry no result. *)
let ack_request t tk ~result =
  if tk.t_inflight >= 0 then begin
    let id = tk.t_inflight in
    tk.t_inflight <- -1;
    t.inflight_count <- t.inflight_count - 1;
    let first = t.req_completions.(id) = 0 in
    t.req_completions.(id) <- t.req_completions.(id) + 1;
    if first then begin
      let latency = Int64.sub (Cpu.cycles (Machine.cpu t.machine)) tk.t_req_start in
      t.req_latencies.(id) <- latency;
      t.req_done <- t.req_done + 1;
      emit t
        (Roload_obs.Event.Request_done { pid = tk.pid; id; latency = Int64.to_int latency })
    end;
    (match result with
    | Some r ->
      if not t.req_has_result.(id) then begin
        t.req_has_result.(id) <- true;
        t.req_result.(id) <- r;
        let m = 1_000_003L in
        let r' = Int64.rem (Int64.add (Int64.rem r m) m) m in
        t.committed_sum <- Int64.rem (Int64.add t.committed_sum r') m
      end
      else if t.req_result.(id) <> r then t.req_diverged.(id) <- true
    | None -> ());
    if pending_requests t = 0 && t.inflight_count = 0 then wake_req_waiters t
  end

(* A dead worker's un-acked request goes back to its shard queue
   (at-least-once delivery); anyone blocked on an empty device is woken
   to pick it up. *)
let requeue_inflight t tk =
  if tk.t_inflight >= 0 then begin
    let id = tk.t_inflight in
    tk.t_inflight <- -1;
    t.inflight_count <- t.inflight_count - 1;
    t.req_redeliveries.(id) <- t.req_redeliveries.(id) + 1;
    let shards = Array.length t.req_queues in
    if shards > 0 then Queue.push id t.req_queues.(id mod shards);
    emit t
      (Roload_obs.Event.Request_redelivered { id; attempt = t.req_redeliveries.(id) });
    wake_req_waiters t
  end

let make_zombie t tk status_code =
  tk.t_state <- Task_zombie status_code;
  match find_task t tk.parent with
  | Some p when p.t_state = Task_waiting -> p.t_state <- Task_ready
  | _ -> ()

(* Terminal path for a clean exit: the inflight request (if any) is
   implicitly acked — the worker finished the work, it just exited
   before asking for more. *)
let finish_task t tk status_code =
  ack_request t tk ~result:None;
  make_zombie t tk status_code

(* Reincarnate a supervised worker in place: fresh address space cloned
   from the birth template, registers/pc reset to the birth record, same
   pid (the parent's wait() accounting and the pid-ascending task order
   are untouched).  The ASID is refreshed — compiled traces capture the
   MMU they were lowered under, and the dead incarnation's table must
   never run against the new address space. *)
let reincarnate t tk b =
  tk.t_restarts <- tk.t_restarts + 1;
  t.restart_count <- t.restart_count + 1;
  tk.proc <- clone_process t b.b_proc;
  Array.blit b.b_regs 0 tk.t_regs 0 32;
  tk.t_pc <- b.b_pc;
  tk.t_state <- Task_ready;
  tk.t_inflight <- -1;
  tk.t_asid <- t.next_pid;
  t.next_pid <- t.next_pid + 1;
  (* defeat [context_switch]'s same-task short-circuit: the next dispatch
     of this task must install the fresh MMU, not the dead one *)
  (match t.scheduled with Some cur when cur == tk -> t.scheduled <- None | _ -> ());
  charge t t.config.context_switch_cycles;
  emit t (Roload_obs.Event.Worker_restart { pid = tk.pid; restarts = tk.t_restarts })

(* Death by signal/kill: redeliver the un-acked inflight request, then
   either reincarnate (supervised, budget left) or zombify through the
   normal wait ABI. *)
let task_dead t tk status_code =
  requeue_inflight t tk;
  match (tk.t_birth, t.supervision) with
  | Some b, Some sup when tk.t_restarts < sup.max_restarts -> reincarnate t tk b
  | _ -> make_zombie t tk status_code

(* Sweep for tasks killed outside their own execution (the deadline
   watchdog, an external chaos kill) and for a clean-exit status set by
   a hook; runs at every scheduler entry, before picking. *)
let reap_external t =
  List.iter
    (fun tk ->
      match tk.t_state with
      | Task_ready | Task_waiting | Task_waiting_req -> (
        match Process.status tk.proc with
        | Process.Running -> ()
        | Process.Killed sg ->
          emit t (Roload_obs.Event.Fault_triage { kind = triage_kind sg; pc = tk.t_pc });
          task_dead t tk (-1)
        | Process.Exited code -> finish_task t tk code)
      | Task_zombie _ | Task_reaped -> ())
    t.tasks

(* The deadline watchdog: mark overdue workers killed; [reap_external]
   processes the deaths.  Checked at scheduler entries only, so the kill
   points are instret/cycle-exact across engines. *)
let check_deadlines t =
  match t.supervision with
  | Some { deadline_cycles; _ } when deadline_cycles > 0L ->
    let now = Cpu.cycles (Machine.cpu t.machine) in
    List.iter
      (fun tk ->
        match tk.t_state with
        | (Task_ready | Task_waiting | Task_waiting_req)
          when tk.t_inflight >= 0
               && Process.status tk.proc = Process.Running
               && Int64.compare (Int64.sub now tk.t_req_start) deadline_cycles > 0 ->
          Process.set_status tk.proc (Process.Killed (Signal.Sigkill { info = "deadline" }))
        | _ -> ())
      t.tasks
  | _ -> ()

(* Write the 8-byte little-endian wait() status, all-or-nothing: an
   unmapped byte anywhere in the buffer means no write at all (the
   caller returns EFAULT without reaping the child). *)
let write_wait_status tk ~va status =
  match
    ignore (Process.translate tk.proc va);
    ignore (Process.translate tk.proc (va + 7))
  with
  | () ->
    let b = Bytes.create 8 in
    Bytes.set_int64_le b 0 (Int64.of_int status);
    Process.kernel_write_bytes tk.proc ~va (Bytes.to_string b);
    true
  | exception Not_found -> false

type sched_decision =
  | Keep (* the task keeps the CPU inside its quantum *)
  | Switch (* the task blocked or exited: schedule someone else *)

(* Syscall servicing under the scheduler.  exit/fork/wait/read_request
   are scheduler-aware; everything else behaves exactly as in a
   single-process run.  A blocking wait() deliberately does not advance
   the pc: the task re-executes the ecall when it is woken. *)
let handle_syscall_mp t tk =
  let cpu = Machine.cpu t.machine in
  let arg r = Int64.to_int (Cpu.get cpu r) in
  charge t t.config.syscall_cycles;
  t.syscall_count <- t.syscall_count + 1;
  let num = arg Reg.a7 in
  let finish ret =
    emit t (Roload_obs.Event.Syscall { number = num; name = Syscall.name num; ret });
    Cpu.set cpu Reg.a0 (Int64.of_int ret);
    Cpu.set_pc cpu (Cpu.pc cpu + 4)
  in
  if num = Syscall.sys_exit then begin
    let code = arg Reg.a0 in
    Process.set_status tk.proc (Process.Exited code);
    emit t (Roload_obs.Event.Syscall { number = num; name = Syscall.name num; ret = 0 });
    finish_task t tk code;
    Switch
  end
  else if num = Syscall.sys_fork then begin
    let child_proc = clone_process t tk.proc in
    let pid = t.next_pid in
    t.next_pid <- pid + 1;
    (* the child resumes after the ecall with a0 = 0 *)
    let child =
      new_task t ~pid ~parent:tk.pid child_proc ~regs:(Cpu.regs cpu) ~pc:(Cpu.pc cpu + 4)
    in
    child.t_regs.(Reg.to_int Reg.a0) <- 0L;
    (* under supervision, capture the child's birth certificate: a second
       pristine clone of the parent's address space plus the birth
       registers, so a crashed incarnation can be restarted from exactly
       this state no matter what was tampered in the meantime *)
    (match t.supervision with
    | Some _ ->
      child.t_birth <-
        Some { b_proc = clone_process t tk.proc; b_regs = Array.copy child.t_regs;
               b_pc = child.t_pc }
    | None -> ());
    finish pid;
    Keep
  end
  else if num = Syscall.sys_wait then begin
    let status_va = arg Reg.a0 in
    let child_of c = c.parent = tk.pid in
    let zombie =
      List.find_opt
        (fun c -> child_of c && match c.t_state with Task_zombie _ -> true | _ -> false)
        t.tasks
    in
    match zombie with
    | Some child ->
      let status = match child.t_state with Task_zombie s -> s | _ -> assert false in
      if status_va <> 0 && not (write_wait_status tk ~va:status_va status) then begin
        finish Syscall.efault;
        Keep
      end
      else begin
        child.t_state <- Task_reaped;
        finish child.pid;
        Keep
      end
    | None ->
      let alive =
        List.exists
          (fun c ->
            child_of c
            &&
            match c.t_state with
            | Task_ready | Task_waiting | Task_waiting_req -> true
            | Task_zombie _ | Task_reaped -> false)
          t.tasks
      in
      if alive then begin
        tk.t_state <- Task_waiting;
        Switch
      end
      else begin
        finish Syscall.echild;
        Keep
      end
  end
  else if num = Syscall.sys_read_request then begin
    (* asking for the next request implicitly acks the previous one *)
    ack_request t tk ~result:None;
    (* the chaos trigger fires here, once, just before hand-out [at] —
       the hand-out counter is the deterministic request-count clock *)
    (match t.req_hook with
    | Some (at, hook) when t.handouts_total >= at ->
      t.req_hook <- None;
      hook t
    | _ -> ());
    if Process.status tk.proc <> Process.Running then begin
      (* the hook killed the calling task mid-syscall *)
      (match Process.status tk.proc with
      | Process.Killed sg ->
        emit t (Roload_obs.Event.Fault_triage { kind = triage_kind sg; pc = Cpu.pc cpu });
        task_dead t tk (-1)
      | Process.Exited code -> finish_task t tk code
      | Process.Running -> ());
      Switch
    end
    else begin
      let shards = Array.length t.req_queues in
      if shards = 0 then begin
        finish (-1);
        Keep
      end
      else begin
        let own = tk.pid mod shards in
        (* own shard first, then steal in deterministic scan order *)
        let rec pick i =
          if i >= shards then None
          else
            let s = (own + i) mod shards in
            if Queue.is_empty t.req_queues.(s) then pick (i + 1)
            else Some (Queue.pop t.req_queues.(s), s)
        in
        match pick 0 with
        | Some (id, shard) ->
          t.req_handouts.(id) <- t.req_handouts.(id) + 1;
          t.handouts_total <- t.handouts_total + 1;
          tk.t_inflight <- id;
          t.inflight_count <- t.inflight_count + 1;
          tk.t_req_start <- Cpu.cycles cpu;
          (* modeled shard contention: hand-out serializes against every
             other live worker assigned to the same shard *)
          let waiters =
            List.fold_left
              (fun acc w ->
                if
                  w != tk && w.parent <> 0
                  && w.pid mod shards = shard
                  && (match w.t_state with
                     | Task_ready | Task_waiting_req -> true
                     | Task_waiting | Task_zombie _ | Task_reaped -> false)
                  && Process.status w.proc = Process.Running
                then acc + 1
                else acc)
              0 t.tasks
          in
          charge t (t.config.queue_cycles_per_waiter * waiters);
          finish t.req_stream.(id);
          Keep
        | None ->
          if t.inflight_count > 0 then begin
            (* a dead worker may still return its request: block without
               advancing the pc and re-execute the ecall when woken *)
            tk.t_state <- Task_waiting_req;
            Switch
          end
          else begin
            finish (-1);
            Keep
          end
      end
    end
  end
  else if num = Syscall.sys_complete_request then begin
    if tk.t_inflight < 0 then finish Syscall.einval
    else begin
      ack_request t tk ~result:(Some (Cpu.get cpu Reg.a0));
      finish 0
    end;
    Keep
  end
  else if num = Syscall.sys_server_checksum then begin
    finish (Int64.to_int t.committed_sum);
    Keep
  end
  else begin
    let ret =
      if num = Syscall.sys_write then
        handle_write t tk.proc ~buf:(arg Reg.a1) ~len:(arg Reg.a2)
      else if num = Syscall.sys_brk then handle_brk t tk.proc (arg Reg.a0)
      else if num = Syscall.sys_mmap then
        handle_mmap t tk.proc ~len:(arg Reg.a1) ~prot:(arg Reg.a2) ~key:(arg Reg.a4)
      else if num = Syscall.sys_mprotect then
        handle_mprotect t tk.proc ~addr:(arg Reg.a0) ~len:(arg Reg.a1) ~prot:(arg Reg.a2)
          ~key:(arg Reg.a3)
      else Syscall.enosys
    in
    finish ret;
    Keep
  end

(* Round-robin over the ready tasks, preempting on a fuel quantum
   ([time_slice] retired instructions).  Deterministic by construction:
   the machine is instret-exact across engines, so the preemption points
   — and therefore the whole interleaving — are identical under
   single/block/traced execution. *)
let run_all ?(limit = no_limit) ?(time_slice = 20_000) t =
  let cpu = Machine.cpu t.machine in
  let time_slice = max 1 time_slice in
  let root =
    match t.tasks with
    | tk :: _ -> tk
    | [] -> invalid_arg "Kernel.run_all: no tasks (spawn_root/exec_all first)"
  in
  let cursor = ref 0 in
  (* next ready task after the cursor pid, wrapping: t.tasks is
     pid-ascending, so the first match is the round-robin choice *)
  let pick_next () =
    let ready = List.filter (fun tk -> tk.t_state = Task_ready) t.tasks in
    match List.find_opt (fun tk -> tk.pid > !cursor) ready with
    | Some tk -> Some tk
    | None -> ( match ready with tk :: _ -> Some tk | [] -> None)
  in
  let rec loop tk quantum_end =
    let remaining = Int64.sub limit.max_instructions (Cpu.instret cpu) in
    if Int64.compare remaining 0L <= 0 then () (* out of global budget *)
    else begin
      let slice = Int64.sub quantum_end (Cpu.instret cpu) in
      if Int64.compare slice 0L <= 0 then begin
        cursor := tk.pid;
        next ()
      end
      else begin
        let fuel64 = if Int64.compare slice remaining < 0 then slice else remaining in
        let fuel =
          if Int64.compare fuel64 (Int64.of_int max_int) >= 0 then max_int
          else Int64.to_int fuel64
        in
        match Machine.run_steps ~fuel t.machine with
        | Machine.Exhausted -> loop tk quantum_end (* budgets re-checked above *)
        | Machine.Stop_pc -> assert false (* run_all never passes stop_at_pc *)
        | Machine.Trap Trap.Ecall -> (
          match handle_syscall_mp t tk with
          | Keep -> loop tk quantum_end
          | Switch -> next ())
        | Machine.Trap Trap.Breakpoint ->
          emit t (Roload_obs.Event.Fault_triage { kind = "sigill"; pc = Cpu.pc cpu });
          Process.set_status tk.proc
            (Process.Killed (Signal.Sigill { pc = Cpu.pc cpu; info = "ebreak" }));
          task_dead t tk (-1);
          next ()
        | Machine.Trap trap -> (
          charge t t.config.fault_cycles;
          match signal_of_trap t trap with
          | Some signal ->
            emit t
              (Roload_obs.Event.Fault_triage
                 { kind = triage_kind signal; pc = trap_pc trap });
            Process.set_status tk.proc (Process.Killed signal);
            task_dead t tk (-1);
            next ()
          | None -> loop tk quantum_end)
      end
    end
  and next () =
    check_deadlines t;
    reap_external t;
    match pick_next () with
    | None -> () (* every task terminal, or everyone blocked: stop *)
    | Some tk ->
      cursor := tk.pid;
      context_switch t tk;
      loop tk (Int64.add (Cpu.instret cpu) (Int64.of_int time_slice))
  in
  next ();
  outcome_of t root.proc

(* Convenience: load, register as root, schedule everything. *)
let exec_all ?(limit = no_limit) ?time_slice t exe =
  let process = load t exe in
  spawn_root t process;
  let outcome = run_all ~limit ?time_slice t in
  (process, outcome)
