(** Syscall ABI constants.  [mmap] gains a key argument (a4) and
    [mprotect] a key argument (a3) — the modified kernel's page-key
    interfaces (paper §III-B).  [fork]/[wait]/[read_request] are the
    multi-process kernel's additions. *)

val sys_exit : int
val sys_write : int
val sys_brk : int
val sys_mmap : int
val sys_mprotect : int
val sys_fork : int

val sys_wait : int
(** a0 = virtual address the child's exit status is written to (0 to
    discard); returns the reaped child's pid, [echild] with no children,
    or [efault] for an unmapped status address. *)

val sys_read_request : int
(** The simulated request-source device: returns the next request
    payload, or -1 once the stream is exhausted. *)

val prot_read : int
val prot_write : int
val prot_exec : int
val perms_of_prot : int -> Roload_mem.Perm.t

val enosys : int
val einval : int
val enomem : int
val echild : int
val ebadf : int
val efault : int

val name : int -> string
