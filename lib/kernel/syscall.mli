(** Syscall ABI constants.  [mmap] gains a key argument (a4) and
    [mprotect] a key argument (a3) — the modified kernel's page-key
    interfaces (paper §III-B).  [fork]/[wait]/[read_request] are the
    multi-process kernel's additions. *)

val sys_exit : int
val sys_write : int
val sys_brk : int
val sys_mmap : int
val sys_mprotect : int
val sys_fork : int

val sys_wait : int
(** a0 = virtual address the child's exit status is written to (0 to
    discard); returns the reaped child's pid, [echild] with no children,
    or [efault] for an unmapped status address. *)

val sys_read_request : int
(** The simulated request-source device: returns the next request
    payload, or -1 once the stream is exhausted.  Blocks (re-executing
    the ecall) while every shard is empty but requests are still in
    flight on other workers — a dead worker's request may be
    redelivered. *)

val sys_complete_request : int
(** Explicit idempotent ack of the caller's inflight request; a0 = the
    result to commit (first committed result wins).  Returns 0, or
    [einval] with nothing in flight. *)

val sys_server_checksum : int
(** Returns the kernel-side fold (mod 1_000_003) of every committed
    result — an order-independent payload-multiset checksum that
    survives worker kills and restarts. *)

val prot_read : int
val prot_write : int
val prot_exec : int
val perms_of_prot : int -> Roload_mem.Perm.t

val enosys : int
val einval : int
val enomem : int
val echild : int
val ebadf : int
val efault : int

val name : int -> string
