(* Whole-system snapshots: the per-layer images (machine, kernel,
   process) captured at one instant, plus what the fork path needs to
   rebuild an address space over the forked memory (executable, kernel
   config, page-table root).

   Campaign runners boot a workload once, pause at the trigger frontier,
   capture, and fork thousands of variants from the warm image instead
   of re-booting each from reset: physical pages are shared
   copy-on-write, so a fork costs O(touched pages), not O(memory
   size). *)

module Machine = Roload_machine.Machine
module Config = Roload_machine.Config
module Page_table = Roload_mem.Page_table
module Mmu = Roload_mem.Mmu
module Phys_mem = Roload_mem.Phys_mem

type t = {
  sn_machine : Machine.image;
  sn_kernel : Kernel.image;
  sn_process : Process.image;
  sn_exe : Roload_obj.Exe.t;
  sn_kconfig : Kernel.config;
  sn_root_ppn : int;
}

let capture ~machine ~kernel ~process =
  {
    sn_machine = Machine.snapshot machine;
    sn_kernel = Kernel.snapshot kernel;
    sn_process = Process.snapshot process;
    sn_exe = Process.exe process;
    sn_kconfig = Kernel.config kernel;
    sn_root_ppn = Page_table.root_ppn (Process.page_table process);
  }

(* Put the {e same} objects back into the captured state.  Identities
   are preserved (including compiled traces), so resumed execution is
   byte-identical to the original run. *)
let restore t ~machine ~kernel ~process =
  Machine.restore machine t.sn_machine;
  Kernel.restore kernel t.sn_kernel;
  Process.restore process t.sn_process

(* A fresh, fully independent system in the captured state.  The page
   table already lives inside the forked memory; only the walker and the
   MMU (seeded from the captured TLB/fault state) are rebuilt. *)
let fork t =
  let machine = Machine.fork t.sn_machine in
  let kernel = Kernel.fork t.sn_kernel ~machine ~config:t.sn_kconfig in
  let mem = Machine.mem machine in
  let page_table =
    Page_table.with_root ~mem ~root_ppn:t.sn_root_ppn ~alloc_frame:(fun () ->
        Kernel.alloc_frame kernel)
  in
  let mconfig = Machine.config machine in
  let mmu =
    Mmu.create ~page_table ~itlb_entries:mconfig.Config.itlb_entries
      ~dtlb_entries:mconfig.Config.dtlb_entries
      ~roload_check_enabled:mconfig.Config.roload_processor
  in
  (match Machine.mmu_image t.sn_machine with
  | Some im -> Mmu.restore mmu im
  | None -> ());
  let process = Process.fork t.sn_process ~exe:t.sn_exe ~page_table ~mmu ~phys:mem in
  Kernel.adopt kernel process;
  (machine, kernel, process)

let mem_image t = Machine.mem_image t.sn_machine

(* The differential-state comparator: page-by-page diff with the first
   differing byte of each page — the silent-corruption localizer of
   chaos verdicts. *)
let diff a b = Phys_mem.diff_images (mem_image a) (mem_image b)
