(* Syscall ABI: numbers follow the RISC-V Linux convention where one
   exists.  mmap gains a key argument (a4) and mprotect a key argument
   (a3) — the interfaces the modified kernel exposes so user-mode
   processes can set up page keys (paper §III-B).

   The multi-process kernel adds fork/wait (Linux clone/wait4 numbers)
   and read_request, the simulated request-source device feeding the
   server macro-workload (vendor-space number, as a device would use). *)

let sys_exit = 93
let sys_write = 64
let sys_brk = 214
let sys_mmap = 222
let sys_mprotect = 226
let sys_fork = 220 (* Linux: clone *)
let sys_wait = 260 (* Linux: wait4; a0 = status va (0 = discard) *)
let sys_read_request = 1024 (* request-source device: next payload or -1 *)
let sys_complete_request = 1025 (* explicit ack: a0 = result committed for the inflight id *)
let sys_server_checksum = 1026 (* fold of committed results (mod 1000003); survives worker kills *)

(* prot bits, as in POSIX *)
let prot_read = 1
let prot_write = 2
let prot_exec = 4

let perms_of_prot prot =
  {
    Roload_mem.Perm.r = prot land prot_read <> 0;
    w = prot land prot_write <> 0;
    x = prot land prot_exec <> 0;
  }

(* errno-style return values (negated, as the kernel ABI returns them) *)
let enosys = -38
let einval = -22
let enomem = -12
let echild = -10
let ebadf = -9
let efault = -14

let name = function
  | 93 -> "exit"
  | 64 -> "write"
  | 214 -> "brk"
  | 222 -> "mmap"
  | 226 -> "mprotect"
  | 220 -> "fork"
  | 260 -> "wait"
  | 1024 -> "read_request"
  | 1025 -> "complete_request"
  | 1026 -> "server_checksum"
  | n -> Printf.sprintf "unknown(%d)" n
