(* A user-mode process: its address space, memory accounting, status, and
   console output.  The machine executes one process at a time; the kernel
   installs the process's MMU before running it. *)

module Perm = Roload_mem.Perm
module Page_table = Roload_mem.Page_table
module Mmu = Roload_mem.Mmu
module Exe = Roload_obj.Exe

type status =
  | Running
  | Exited of int
  | Killed of Signal.t

type t = {
  exe : Exe.t;
  page_table : Page_table.t;
  mmu : Mmu.t;
  phys : Roload_mem.Phys_mem.t;
  mutable brk : int;
  mutable brk_start : int;
  mutable mmap_next : int;
  mutable mapped_pages : int;
  mutable peak_pages : int;
  mutable status : status;
  output : Buffer.t;
}

let page = Page_table.page_size

let stack_top = 0x3FF0000
let stack_pages = 64 (* 256 KiB *)
let mmap_base = 0x2000000

(* The mmap region is bounded by a guard band below the stack: without
   it, repeated mmap calls walk the cursor into the live stack pages
   below [stack_top] and silently remap them. *)
let stack_guard_pages = 16
let mmap_limit = stack_top - ((stack_pages + stack_guard_pages) * page)

let create ~exe ~page_table ~mmu ~phys ~brk =
  {
    exe;
    page_table;
    mmu;
    phys;
    brk;
    brk_start = brk;
    mmap_next = mmap_base;
    mapped_pages = 0;
    peak_pages = 0;
    status = Running;
    output = Buffer.create 256;
  }

(* ---- snapshots ----

   Everything mutable (or observable, like the console buffer) is
   captured by value; the address-space objects themselves are snapshot
   at the memory layer, so a process image composes with a physical
   memory image taken at the same instant. *)

type image = {
  i_brk : int;
  i_brk_start : int;
  i_mmap_next : int;
  i_mapped_pages : int;
  i_peak_pages : int;
  i_status : status;
  i_output : string;
}

let snapshot t =
  {
    i_brk = t.brk;
    i_brk_start = t.brk_start;
    i_mmap_next = t.mmap_next;
    i_mapped_pages = t.mapped_pages;
    i_peak_pages = t.peak_pages;
    i_status = t.status;
    i_output = Buffer.contents t.output;
  }

let restore t img =
  t.brk <- img.i_brk;
  t.brk_start <- img.i_brk_start;
  t.mmap_next <- img.i_mmap_next;
  t.mapped_pages <- img.i_mapped_pages;
  t.peak_pages <- img.i_peak_pages;
  t.status <- img.i_status;
  Buffer.clear t.output;
  Buffer.add_string t.output img.i_output

(* A fresh process in the captured state, wired to an already-forked
   address space (the caller forks phys/page-table/MMU first). *)
let fork img ~exe ~page_table ~mmu ~phys =
  let t = create ~exe ~page_table ~mmu ~phys ~brk:img.i_brk in
  restore t img;
  t

let status t = t.status
let output t = Buffer.contents t.output
let append_output t s = Buffer.add_string t.output s

(* In-kernel fork duplicates the parent image, console contents included;
   the child starts with an empty console instead. *)
let clear_output t = Buffer.clear t.output
let exe t = t.exe
let mmu t = t.mmu
let page_table t = t.page_table

let set_status t s = if t.status = Running then t.status <- s

let account_mapped t n =
  t.mapped_pages <- t.mapped_pages + n;
  if t.mapped_pages > t.peak_pages then t.peak_pages <- t.mapped_pages

let peak_pages t = t.peak_pages
let peak_kib t = t.peak_pages * page / 1024

let brk t = t.brk
let set_brk t b = t.brk <- b

let init_brk t b =
  t.brk <- b;
  t.brk_start <- b

let heap_bytes t = t.brk - t.brk_start

(* Reserve address space for [npages]; [None] when the region would
   cross the stack guard (the caller returns ENOMEM).  The cursor only
   moves on success, so a refused or unwound mmap leaves the next
   allocation exactly where it would have been. *)
let alloc_mmap_region t npages =
  let addr = t.mmap_next in
  if npages <= 0 || addr + (npages * page) > mmap_limit then None
  else begin
    t.mmap_next <- addr + (npages * page);
    Some addr
  end

(* Roll the cursor back after a partial-failure unwind.  Only the most
   recent reservation can be retracted (the cursor is a bump
   allocator); anything else is a kernel bug. *)
let retract_mmap_region t ~addr ~npages =
  assert (t.mmap_next = addr + (npages * page));
  t.mmap_next <- addr

let mapped_pages t = t.mapped_pages

(* Page-accounting snapshot/rollback for all-or-nothing syscalls: a
   partially mapped region that gets unwound must leave both the live
   count and the peak exactly as they were. *)
let accounting t = (t.mapped_pages, t.peak_pages)

let rollback_accounting t ~mapped ~peak =
  t.mapped_pages <- mapped;
  t.peak_pages <- peak

(* ---- user-memory access from kernel / attacker tooling ---- *)

(* Translate through the page table (ignores TLB state; kernel-mode
   access). *)
let translate t va = Page_table.translate_exn t.page_table va

let read_bytes t ~va ~len =
  let b = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.set b i (Char.chr (Roload_mem.Phys_mem.read_u8 t.phys (translate t (va + i))))
  done;
  Bytes.to_string b

let read_u64 t ~va = Roload_mem.Phys_mem.read_u64 t.phys (translate t va)

(* Kernel-privileged write (the loader uses this). *)
let kernel_write_bytes t ~va s =
  String.iteri
    (fun i c -> Roload_mem.Phys_mem.write_u8 t.phys (translate t (va + i)) (Char.code c))
    s

(* The attacker's primitive under the paper's threat model: arbitrary
   writes, but only to pages that are actually writable. *)
exception Attack_blocked of string

let page_writable t va =
  match Page_table.walk t.page_table va with
  | Error (Page_table.Not_mapped | Page_table.Bad_alignment) -> false
  | Ok { pte; _ } -> Roload_mem.Pte.writable pte

let attacker_write t ~va s =
  String.iteri
    (fun i c ->
      let a = va + i in
      if not (page_writable t a) then
        raise (Attack_blocked (Printf.sprintf "page at 0x%x is not writable" a));
      Roload_mem.Phys_mem.write_u8 t.phys (translate t a) (Char.code c))
    s

let attacker_write_u64 t ~va v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  attacker_write t ~va (Bytes.to_string b)
