(* Code generation: IR functions → assembler items.

   Conventions:
   - t0/t1 are emission scratch; t2 holds indirect-call/vcall targets
     (so argument staging cannot clobber it); a-registers carry
     arguments and results and are never allocated.
   - One epilogue per function; rets jump to it.
   - Hardening metadata lowers here:
       roload keys      → ld.ro (plus an addi when an offset is needed,
                          since ld.ro has no offset immediate — §III-C)
       vtint            → read-only-range check on the vtable pointer
       cfi labels       → `lui x0, id` before the function entry and an
                          id-word comparison before the indirect jump. *)

module Ir = Roload_ir.Ir
module Reg = Roload_isa.Reg
module Inst = Roload_isa.Inst
module A = Roload_asm.Asm_ir
module Encode = Roload_isa.Encode

exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* Symbols the linker defines for the read-only region, used by the VTint
   range check. *)
let ro_start_symbol = "__ro_start"
let ro_end_symbol = "__ro_end"

type frame = {
  spill_base : int; (* sp offset of spill slot 0 *)
  arrays_base : int;
  array_offsets : (int * int) list; (* slot_id -> sp offset *)
  saved_base : int;
  saved_regs : Reg.t list;
  ra_offset : int;
  size : int;
}

let build_frame (f : Ir.func) (alloc : Regalloc.allocation) =
  let spill_base = 0 in
  let arrays_base = spill_base + (8 * alloc.Regalloc.spill_count) in
  let array_offsets, arrays_end =
    List.fold_left
      (fun (acc, pos) (slot : Ir.frame_slot) ->
        let size = Roload_util.Bits.align_up (max 8 slot.Ir.slot_size) 8 in
        ((slot.Ir.slot_id, pos) :: acc, pos + size))
      ([], arrays_base) f.Ir.f_frame_slots
  in
  let saved_base = arrays_end in
  let saved_regs = alloc.Regalloc.used_callee_saved in
  let ra_offset = saved_base + (8 * List.length saved_regs) in
  let size = Roload_util.Bits.align_up (ra_offset + 8) 16 in
  { spill_base; arrays_base; array_offsets; saved_base; saved_regs; ra_offset; size }

type ret_protection = {
  rp_key : int;
  rp_local_funcs : string list; (* functions compiled in this module *)
  rp_counter : int ref; (* module-wide return-site numbering *)
}

type ctx = {
  func : Ir.func;
  alloc : Regalloc.allocation;
  frame : frame;
  mutable items : A.item list; (* reversed *)
  mutable abort_used : bool;
  ret_protection : ret_protection option;
}

let emit ctx item = ctx.items <- item :: ctx.items
let inst ctx i = emit ctx (A.Inst i)

let block_label ctx l = Printf.sprintf ".L$%s$%s" ctx.func.Ir.f_name l
let epilogue_label ctx = block_label ctx "__epilogue"
let abort_label ctx = block_label ctx "__abort"

let fits12 v = Roload_util.Bits.fits_signed v ~width:12

(* sp-relative load/store that tolerates large frames *)
let load_sp ctx rd off =
  if fits12 (Int64.of_int off) then inst ctx (Inst.ld rd Reg.sp (Int64.of_int off))
  else begin
    emit ctx (A.Li (Reg.t1, Int64.of_int off));
    inst ctx (Inst.Op (Inst.Add, Reg.t1, Reg.sp, Reg.t1));
    inst ctx (Inst.ld rd Reg.t1 0L)
  end

let store_sp ctx rs off =
  if fits12 (Int64.of_int off) then inst ctx (Inst.sd rs Reg.sp (Int64.of_int off))
  else begin
    emit ctx (A.Li (Reg.t1, Int64.of_int off));
    inst ctx (Inst.Op (Inst.Add, Reg.t1, Reg.sp, Reg.t1));
    inst ctx (Inst.sd rs Reg.t1 0L)
  end

let spill_offset ctx s = ctx.frame.spill_base + (8 * s)

(* Bring a value into a register; [scratch] is used when needed. *)
let use_val ctx v ~scratch =
  match v with
  | Ir.Temp t -> (
    match Regalloc.location ctx.alloc t with
    | Regalloc.In_reg r -> r
    | Regalloc.Spilled s ->
      load_sp ctx scratch (spill_offset ctx s);
      scratch)
  | Ir.Const 0L -> Reg.zero
  | Ir.Const c ->
    emit ctx (A.Li (scratch, c));
    scratch
  | Ir.Global g ->
    emit ctx (A.La (scratch, g));
    scratch
  | Ir.Func_addr f ->
    emit ctx (A.La (scratch, f));
    scratch

(* Destination register for temp [t]: returns the register to compute
   into and a finisher that stores it back if the temp is spilled. *)
let def_reg ctx t ~scratch =
  match Regalloc.location ctx.alloc t with
  | Regalloc.In_reg r -> (r, fun () -> ())
  | Regalloc.Spilled s -> (scratch, fun () -> store_sp ctx scratch (spill_offset ctx s))

let move_into ctx (dst : Reg.t) v =
  match v with
  | Ir.Temp t -> (
    match Regalloc.location ctx.alloc t with
    | Regalloc.In_reg r -> if not (Reg.equal r dst) then inst ctx (Inst.mv dst r)
    | Regalloc.Spilled s -> load_sp ctx dst (spill_offset ctx s))
  | Ir.Const c -> emit ctx (A.Li (dst, c))
  | Ir.Global g -> emit ctx (A.La (dst, g))
  | Ir.Func_addr f -> emit ctx (A.La (dst, f))

let store_result ctx dst_opt =
  match dst_opt with
  | None -> ()
  | Some t -> (
    match Regalloc.location ctx.alloc t with
    | Regalloc.In_reg r -> if not (Reg.equal r Reg.a0) then inst ctx (Inst.mv r Reg.a0)
    | Regalloc.Spilled s -> store_sp ctx Reg.a0 (spill_offset ctx s))

(* ---------- binary operations ---------- *)

let emit_bin ctx op d a b =
  let rd, finish = def_reg ctx d ~scratch:Reg.t0 in
  (let ra () = use_val ctx a ~scratch:Reg.t0 in
   let rb () = use_val ctx b ~scratch:Reg.t1 in
   let imm_or_reg mk_imm mk_reg =
     match b with
     | Ir.Const c when fits12 c -> mk_imm (ra ()) c
     | _ ->
       let x = ra () in
       let y = rb () in
       mk_reg x y
   in
   match op with
   | Ir.Add ->
     imm_or_reg
       (fun x c -> inst ctx (Inst.Op_imm (Inst.Add, rd, x, c)))
       (fun x y -> inst ctx (Inst.Op (Inst.Add, rd, x, y)))
   | Ir.Sub -> (
     match b with
     | Ir.Const c when fits12 (Int64.neg c) ->
       inst ctx (Inst.Op_imm (Inst.Add, rd, ra (), Int64.neg c))
     | _ ->
       let x = ra () in
       let y = rb () in
       inst ctx (Inst.Op (Inst.Sub, rd, x, y)))
   | Ir.Mul ->
     let x = ra () in
     let y = rb () in
     inst ctx (Inst.Mulop (Inst.Mul, rd, x, y))
   | Ir.Div ->
     let x = ra () in
     let y = rb () in
     inst ctx (Inst.Mulop (Inst.Div, rd, x, y))
   | Ir.Rem ->
     let x = ra () in
     let y = rb () in
     inst ctx (Inst.Mulop (Inst.Rem, rd, x, y))
   | Ir.And ->
     imm_or_reg
       (fun x c -> inst ctx (Inst.Op_imm (Inst.And, rd, x, c)))
       (fun x y -> inst ctx (Inst.Op (Inst.And, rd, x, y)))
   | Ir.Or ->
     imm_or_reg
       (fun x c -> inst ctx (Inst.Op_imm (Inst.Or, rd, x, c)))
       (fun x y -> inst ctx (Inst.Op (Inst.Or, rd, x, y)))
   | Ir.Xor ->
     imm_or_reg
       (fun x c -> inst ctx (Inst.Op_imm (Inst.Xor, rd, x, c)))
       (fun x y -> inst ctx (Inst.Op (Inst.Xor, rd, x, y)))
   | Ir.Shl -> (
     match b with
     | Ir.Const c when c >= 0L && c < 64L ->
       inst ctx (Inst.Op_imm (Inst.Sll, rd, ra (), c))
     | _ ->
       let x = ra () in
       let y = rb () in
       inst ctx (Inst.Op (Inst.Sll, rd, x, y)))
   | Ir.Shr -> (
     match b with
     | Ir.Const c when c >= 0L && c < 64L ->
       inst ctx (Inst.Op_imm (Inst.Sra, rd, ra (), c))
     | _ ->
       let x = ra () in
       let y = rb () in
       inst ctx (Inst.Op (Inst.Sra, rd, x, y)))
   | Ir.Shru -> (
     match b with
     | Ir.Const c when c >= 0L && c < 64L ->
       inst ctx (Inst.Op_imm (Inst.Srl, rd, ra (), c))
     | _ ->
       let x = ra () in
       let y = rb () in
       inst ctx (Inst.Op (Inst.Srl, rd, x, y)))
   | Ir.Eq ->
     let x = ra () in
     let y = rb () in
     inst ctx (Inst.Op (Inst.Xor, rd, x, y));
     inst ctx (Inst.Op_imm (Inst.Sltu, rd, rd, 1L))
   | Ir.Ne ->
     let x = ra () in
     let y = rb () in
     inst ctx (Inst.Op (Inst.Xor, rd, x, y));
     inst ctx (Inst.Op (Inst.Sltu, rd, Reg.zero, rd))
   | Ir.Lt ->
     let x = ra () in
     let y = rb () in
     inst ctx (Inst.Op (Inst.Slt, rd, x, y))
   | Ir.Gt ->
     let x = ra () in
     let y = rb () in
     inst ctx (Inst.Op (Inst.Slt, rd, y, x))
   | Ir.Le ->
     let x = ra () in
     let y = rb () in
     inst ctx (Inst.Op (Inst.Slt, rd, y, x));
     inst ctx (Inst.Op_imm (Inst.Xor, rd, rd, 1L))
   | Ir.Ge ->
     let x = ra () in
     let y = rb () in
     inst ctx (Inst.Op (Inst.Slt, rd, x, y));
     inst ctx (Inst.Op_imm (Inst.Xor, rd, rd, 1L)));
  finish ()

(* ---------- memory ---------- *)

let addr_reg ctx addr offset ~scratch =
  (* returns (reg, remaining offset) *)
  match addr with
  | Ir.Global g ->
    emit ctx (A.La (scratch, g));
    (scratch, offset)
  | _ ->
    let r = use_val ctx addr ~scratch in
    if fits12 (Int64.of_int offset) then (r, offset)
    else begin
      emit ctx (A.Li (Reg.t1, Int64.of_int offset));
      inst ctx (Inst.Op (Inst.Add, Reg.t1, r, Reg.t1));
      (Reg.t1, 0)
    end

let emit_load ctx ~dst ~addr ~offset ~width ~(md : Ir.load_md) =
  let rd, finish = def_reg ctx dst ~scratch:Reg.t0 in
  let base, off = addr_reg ctx addr offset ~scratch:Reg.t0 in
  let w = match width with Ir.W8 -> Inst.Byte | Ir.W64 -> Inst.Double in
  (match md.Ir.roload_key with
  | None ->
    inst ctx (Inst.Load { width = w; unsigned = false; rd; rs1 = base; imm = Int64.of_int off })
  | Some _ when md.Ir.ro_elided ->
    (* roload-elide: check statically proven redundant, plain load *)
    inst ctx (Inst.Load { width = w; unsigned = false; rd; rs1 = base; imm = Int64.of_int off })
  | Some key ->
    (* ld.ro has no offset immediate: materialize the address first *)
    let base =
      if off = 0 then base
      else begin
        inst ctx (Inst.Op_imm (Inst.Add, Reg.t0, base, Int64.of_int off));
        Reg.t0
      end
    in
    inst ctx (Inst.Load_ro { width = w; unsigned = false; rd; rs1 = base; key }));
  finish ()

let emit_store ctx ~src ~addr ~offset ~width =
  let base, off = addr_reg ctx addr offset ~scratch:Reg.t0 in
  let rs = use_val ctx src ~scratch:(if Reg.equal base Reg.t1 then Reg.t0 else Reg.t1) in
  let w = match width with Ir.W8 -> Inst.Byte | Ir.W64 -> Inst.Double in
  inst ctx (Inst.Store { width = w; rs2 = rs; rs1 = base; imm = Int64.of_int off })

(* ---------- calls ---------- *)

let arg_regs = [| Reg.a0; Reg.a1; Reg.a2; Reg.a3; Reg.a4; Reg.a5; Reg.a6; Reg.a7 |]

let stage_args ctx args =
  if List.length args > 8 then error "%s: more than 8 arguments" ctx.func.Ir.f_name;
  List.iteri (fun i a -> move_into ctx arg_regs.(i) a) args

(* Backward-edge protection (paper §IV-C): a protected call materializes
   the address of a keyed read-only *return-site cell* into ra and jumps;
   the cell holds the true return address, and the callee's epilogue
   dereferences it with ld.ro.  Returns the emitter to run instead of a
   plain call/jalr, or None when the callee returns conventionally. *)
let protected_call ctx ~jump =
  match ctx.ret_protection with
  | None -> None
  | Some rp ->
    Some
      (fun () ->
        let n = !(rp.rp_counter) in
        rp.rp_counter := n + 1;
        let cell = Printf.sprintf "__retsite$%d" n in
        let site = Printf.sprintf ".Lretsite$%d" n in
        (* the cell lives in the return-site allowlist page *)
        emit ctx (A.Section (Printf.sprintf ".rodata.key.%d" rp.rp_key));
        emit ctx (A.Align 8);
        emit ctx (A.Label cell);
        emit ctx (A.Quad_sym site);
        emit ctx (A.Section ".text");
        emit ctx (A.La (Reg.ra, cell));
        jump ();
        emit ctx (A.Label site))

let emit_call ctx callee =
  let local =
    match ctx.ret_protection with
    | Some rp -> List.mem callee rp.rp_local_funcs
    | None -> false
  in
  if local then
    match protected_call ctx ~jump:(fun () -> emit ctx (A.Tail callee)) with
    | Some go -> go ()
    | None -> emit ctx (A.Call callee)
  else emit ctx (A.Call callee)

let emit_indirect_jump ctx ~target_reg =
  (* indirect calls always target module functions; protect when enabled *)
  match
    protected_call ctx ~jump:(fun () -> inst ctx (Inst.Jalr (Reg.zero, target_reg, 0L)))
  with
  | Some go -> go ()
  | None -> inst ctx (Inst.Jalr (Reg.ra, target_reg, 0L))

let emit_cfi_check ctx ~target_reg ~label =
  (* load the word before the target and compare with `lui x0, label` *)
  ctx.abort_used <- true;
  inst ctx
    (Inst.Load { width = Inst.Word; unsigned = false; rd = Reg.t0; rs1 = target_reg;
                 imm = -4L });
  let expected = Encode.encode (Inst.Lui (Reg.zero, Int64.of_int label)) in
  let expected_sext = Roload_util.Bits.sign_extend (Int64.of_int expected) ~width:32 in
  emit ctx (A.Li (Reg.t1, expected_sext));
  emit ctx (A.Branch_to (Inst.Bne, Reg.t0, Reg.t1, abort_label ctx))

let emit_vtint_check ctx ~vptr_reg =
  ctx.abort_used <- true;
  emit ctx (A.La (Reg.t0, ro_start_symbol));
  emit ctx (A.Branch_to (Inst.Bltu, vptr_reg, Reg.t0, abort_label ctx));
  emit ctx (A.La (Reg.t0, ro_end_symbol));
  emit ctx (A.Branch_to (Inst.Bgeu, vptr_reg, Reg.t0, abort_label ctx))

let emit_instr ctx i =
  match i with
  | Ir.Bin (op, d, a, b) -> emit_bin ctx op d a b
  | Ir.Load { dst; addr; offset; width; md } -> emit_load ctx ~dst ~addr ~offset ~width ~md
  | Ir.Store { src; addr; offset; width } -> emit_store ctx ~src ~addr ~offset ~width
  | Ir.Lea_frame (d, slot) ->
    let rd, finish = def_reg ctx d ~scratch:Reg.t0 in
    let off = List.assoc slot ctx.frame.array_offsets in
    if fits12 (Int64.of_int off) then
      inst ctx (Inst.Op_imm (Inst.Add, rd, Reg.sp, Int64.of_int off))
    else begin
      emit ctx (A.Li (rd, Int64.of_int off));
      inst ctx (Inst.Op (Inst.Add, rd, Reg.sp, rd))
    end;
    finish ()
  | Ir.Call { dst; callee; args } ->
    stage_args ctx args;
    emit_call ctx callee;
    store_result ctx dst
  | Ir.Call_indirect { dst; callee; args; sig_id = _; md } ->
    (* target into t2 before argument staging *)
    move_into ctx Reg.t2 callee;
    (match md.Ir.ic_roload_key with
    | Some _ when md.Ir.ic_elided ->
      (* roload-elide: the value is still a GFPT slot address, but the key
         check is proven redundant — dereference with a plain load *)
      inst ctx
        (Inst.Load { width = Inst.Double; unsigned = false; rd = Reg.t2; rs1 = Reg.t2;
                     imm = 0L })
    | Some key ->
      (* ICall: the value is the address of a GFPT slot; the real target
         is loaded through ld.ro with the type key (Listing 3) *)
      inst ctx
        (Inst.Load_ro { width = Inst.Double; unsigned = false; rd = Reg.t2; rs1 = Reg.t2; key })
    | None -> ());
    (match md.Ir.ic_cfi_label with
    | Some label -> emit_cfi_check ctx ~target_reg:Reg.t2 ~label
    | None -> ());
    stage_args ctx args;
    emit_indirect_jump ctx ~target_reg:Reg.t2;
    store_result ctx dst
  | Ir.Vcall { dst; obj; slot; class_name = _; args; md } ->
    (* vptr into t2 *)
    let robj = use_val ctx obj ~scratch:Reg.t2 in
    inst ctx (Inst.ld Reg.t2 robj 0L);
    if md.Ir.vc_vtint then emit_vtint_check ctx ~vptr_reg:Reg.t2;
    (match md.Ir.vc_roload_key with
    | Some key ->
      if slot <> 0 then
        inst ctx (Inst.Op_imm (Inst.Add, Reg.t2, Reg.t2, Int64.of_int (8 * slot)));
      inst ctx
        (Inst.Load_ro { width = Inst.Double; unsigned = false; rd = Reg.t2; rs1 = Reg.t2; key })
    | None ->
      inst ctx
        (Inst.Load { width = Inst.Double; unsigned = false; rd = Reg.t2; rs1 = Reg.t2;
                     imm = Int64.of_int (8 * slot) }));
    (match md.Ir.vc_cfi_label with
    | Some label -> emit_cfi_check ctx ~target_reg:Reg.t2 ~label
    | None -> ());
    stage_args ctx (obj :: args);
    emit_indirect_jump ctx ~target_reg:Reg.t2;
    store_result ctx dst

let emit_terminator ctx term ~next_label =
  match term with
  | Ir.Br l ->
    let target = block_label ctx l in
    if Some target <> next_label then emit ctx (A.Jump target)
  | Ir.Cbr (v, l1, l2) ->
    let r = use_val ctx v ~scratch:Reg.t0 in
    let t1 = block_label ctx l1 and t2 = block_label ctx l2 in
    if Some t2 = next_label then emit ctx (A.Branch_to (Inst.Bne, r, Reg.zero, t1))
    else if Some t1 = next_label then emit ctx (A.Branch_to (Inst.Beq, r, Reg.zero, t2))
    else begin
      emit ctx (A.Branch_to (Inst.Bne, r, Reg.zero, t1));
      emit ctx (A.Jump t2)
    end
  | Ir.Ret v ->
    (match v with Some v -> move_into ctx Reg.a0 v | None -> ());
    if Some (epilogue_label ctx) <> next_label then emit ctx (A.Jump (epilogue_label ctx))
  | Ir.Halt ->
    inst ctx Inst.Ebreak

(* ---------- function ---------- *)

let emit_function ?ret_protection (f : Ir.func) =
  let live = Liveness.analyze f in
  let alloc = Regalloc.allocate live in
  let frame = build_frame f alloc in
  let ctx = { func = f; alloc; frame; items = []; abort_used = false; ret_protection } in
  emit ctx (A.Section ".text");
  emit ctx (A.Align 4);
  (match f.Ir.f_cfi_id with
  | Some id -> inst ctx (Inst.Lui (Reg.zero, Int64.of_int id))
  | None -> ());
  emit ctx (A.Global f.Ir.f_name);
  emit ctx (A.Label f.Ir.f_name);
  (* prologue *)
  if frame.size > 0 then begin
    if fits12 (Int64.of_int (-frame.size)) then
      inst ctx (Inst.Op_imm (Inst.Add, Reg.sp, Reg.sp, Int64.of_int (-frame.size)))
    else begin
      emit ctx (A.Li (Reg.t0, Int64.of_int frame.size));
      inst ctx (Inst.Op (Inst.Sub, Reg.sp, Reg.sp, Reg.t0))
    end;
    store_sp ctx Reg.ra frame.ra_offset;
    List.iteri (fun i r -> store_sp ctx r (frame.saved_base + (8 * i))) frame.saved_regs
  end;
  (* parameters arrive in a0..a7 *)
  List.iteri
    (fun i t ->
      if i >= 8 then error "%s: more than 8 parameters" f.Ir.f_name;
      match Regalloc.location alloc t with
      | Regalloc.In_reg r -> if not (Reg.equal r arg_regs.(i)) then inst ctx (Inst.mv r arg_regs.(i))
      | Regalloc.Spilled s -> store_sp ctx arg_regs.(i) (spill_offset ctx s))
    f.Ir.f_params;
  (* body *)
  let blocks = Array.of_list f.Ir.f_blocks in
  Array.iteri
    (fun bi b ->
      emit ctx (A.Label (block_label ctx b.Ir.b_label));
      List.iter (emit_instr ctx) b.Ir.b_instrs;
      let next_label =
        if bi + 1 < Array.length blocks then
          Some (block_label ctx blocks.(bi + 1).Ir.b_label)
        else Some (epilogue_label ctx)
      in
      emit_terminator ctx b.Ir.b_term ~next_label)
    blocks;
  (* epilogue *)
  emit ctx (A.Label (epilogue_label ctx));
  if frame.size > 0 then begin
    List.iteri (fun i r -> load_sp ctx r (frame.saved_base + (8 * i))) frame.saved_regs;
    load_sp ctx Reg.ra frame.ra_offset;
    if fits12 (Int64.of_int frame.size) then
      inst ctx (Inst.Op_imm (Inst.Add, Reg.sp, Reg.sp, Int64.of_int frame.size))
    else begin
      emit ctx (A.Li (Reg.t0, Int64.of_int frame.size));
      inst ctx (Inst.Op (Inst.Add, Reg.sp, Reg.sp, Reg.t0))
    end
  end;
  (match ret_protection with
  | Some rp when f.Ir.f_name <> "main" ->
    (* ra holds a pointer into the return-site allowlist: dereference it
       through ld.ro (a corrupted saved-ra can only name existing cells) *)
    inst ctx
      (Inst.Load_ro { width = Inst.Double; unsigned = false; rd = Reg.ra; rs1 = Reg.ra;
                      key = rp.rp_key });
    inst ctx (Inst.Jalr (Reg.zero, Reg.ra, 0L))
  | Some _ | None -> inst ctx Inst.ret);
  if ctx.abort_used then begin
    emit ctx (A.Label (abort_label ctx));
    inst ctx Inst.Ebreak
  end;
  List.rev ctx.items

(* ---------- globals ---------- *)

let emit_global (g : Ir.global) =
  let items = ref [ A.Align 8; A.Section g.Ir.g_section ] in
  let push i = items := i :: !items in
  push (A.Label g.Ir.g_name);
  (match g.Ir.g_bytes with
  | Some bytes -> push (A.Bytes_raw bytes)
  | None ->
    List.iter
      (function
        | Ir.G_int v -> push (A.Quad_int v)
        | Ir.G_func f -> push (A.Quad_sym f)
        | Ir.G_global gg -> push (A.Quad_sym gg))
      g.Ir.g_init);
  if g.Ir.g_zero > 0 then push (A.Zero g.Ir.g_zero);
  List.rev !items

let emit_module (m : Ir.modul) =
  let ret_protection =
    match m.Ir.m_ret_key with
    | None -> None
    | Some rp_key ->
      Some
        {
          rp_key;
          rp_local_funcs = List.map (fun f -> f.Ir.f_name) m.Ir.m_funcs;
          rp_counter = ref 0;
        }
  in
  List.concat_map emit_global m.Ir.m_globals
  @ List.concat_map (emit_function ?ret_protection) m.Ir.m_funcs
