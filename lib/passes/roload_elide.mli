(** roload-elide: proof-guided removal of statically-redundant ld.ro
    checks.

    Driven by a proof callback (supplied by the toolchain from a clean
    roload-prove run — this library cannot depend on the analysis
    library): a single-definition operand temp certified for its key has
    its keyed uses rewritten to plain loads, with exactly one hoisted
    ld.ro check at the definition ([`Pure]), zero-guarded when the value
    may also be an implicit zero ([`Guarded]).  Constant keyed-section
    addresses are elided with no residual check.  Virtual calls are
    never elided (the vptr cell is writable heap memory).  A group is
    only rewritten when profitable: at least two use sites, or a use
    deeper in a natural loop than its definition. *)

module Ir = Roload_ir.Ir

type proof = [ `Guarded | `Pure ]

type stats = {
  el_icalls : int;  (** indirect-call sites rewritten to plain slot loads *)
  el_loads : int;  (** keyed load sites rewritten to plain loads *)
  el_const : int;  (** of which constant-address sites (no residual check) *)
  el_checks : int;  (** hoisted ld.ro checks inserted *)
  el_guards : int;  (** of which zero-guarded *)
}

val zero_stats : stats
val add_stats : stats -> stats -> stats

val run :
  prove:(func:string -> temp:int -> key:int -> proof option) -> Ir.modul -> stats
(** Mutates the module in place; re-verify afterwards.  The caller is
    responsible for only passing a [prove] backed by a finding-free
    whole-program analysis of this exact module. *)
