(* roload-elide: proof-guided removal of statically-redundant ld.ro
   checks.

   The whole-program prover (lib/analysis, roload-prove) can certify
   that an operand temp only ever holds pointees inside the keyed
   read-only section its sites are annotated with.  Every keyed use of
   such a temp performs the same dynamic check on the same value; this
   pass keeps exactly one — hoisted to the temp's definition — and
   rewrites the uses to plain loads, which is where the win is: a use
   inside a loop pays the ld.ro path once instead of per iteration.

   The pass cannot see the analysis library (the dependency points the
   other way), so the proof arrives as a callback:

     prove : func:string -> temp:int -> key:int -> [`Pure | `Guarded] option

   [`Pure] means the hoisted check can never fault; [`Guarded] means the
   value may additionally be the implicit zero of a not-yet-written cell,
   so the hoisted check is wrapped in a zero test (a zero value would
   make the hoisted ld.ro fault at the definition where the original
   program only faults — identically, as a plain null load — at the
   use).

   Detection is preserved: register values are not attacker-reachable in
   the ROLoad threat model (paper §II-B — the attacker writes memory),
   so checking the value once at its definition covers every use of that
   same register value.  Only sites whose operand is a direct constant
   address into the keyed section are elided without any residual check
   (the operand is immutable).

   Eligibility, per (temp, key) group:
   - the temp has exactly one static definition (params count as one);
   - the prover certifies the (temp, key) pair;
   - profitability: at least two use sites, or a use at strictly greater
     natural-loop depth than the definition — groups failing this are
     left untouched so a single straight-line use keeps its original
     ld.ro (and its original fault site). *)

module Ir = Roload_ir.Ir

type proof = [ `Guarded | `Pure ]

type stats = {
  el_icalls : int;  (* indirect-call sites rewritten to plain slot loads *)
  el_loads : int;  (* keyed load sites rewritten to plain loads *)
  el_const : int;  (* of which constant-address sites (no residual check) *)
  el_checks : int;  (* hoisted ld.ro checks inserted *)
  el_guards : int;  (* of which zero-guarded *)
}

let zero_stats = { el_icalls = 0; el_loads = 0; el_const = 0; el_checks = 0; el_guards = 0 }

let add_stats a b =
  {
    el_icalls = a.el_icalls + b.el_icalls;
    el_loads = a.el_loads + b.el_loads;
    el_const = a.el_const + b.el_const;
    el_checks = a.el_checks + b.el_checks;
    el_guards = a.el_guards + b.el_guards;
  }

(* ---------- natural-loop depth ---------- *)

(* Iterative dominator sets over the block list (functions are small),
   then: a back edge u->h has h dominating u, and the natural loop of
   (u,h) is h plus everything reaching u backwards without crossing h.
   A block's depth is the number of distinct headers whose loop contains
   it. *)
let loop_depths (f : Ir.func) =
  let blocks = Array.of_list f.Ir.f_blocks in
  let n = Array.length blocks in
  let index = Hashtbl.create 8 in
  Array.iteri (fun i b -> Hashtbl.replace index b.Ir.b_label i) blocks;
  let succs =
    Array.map
      (fun b -> List.filter_map (Hashtbl.find_opt index) (Ir.successors b.Ir.b_term))
      blocks
  in
  let preds = Array.make n [] in
  Array.iteri (fun i ss -> List.iter (fun s -> preds.(s) <- i :: preds.(s)) ss) succs;
  let dom = Array.init n (fun i -> Array.make n (i <> 0 || n = 0)) in
  if n > 0 then dom.(0).(0) <- true;
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 1 to n - 1 do
      let nd = Array.make n true in
      (match preds.(i) with
      | [] -> Array.fill nd 0 n false
      | ps ->
        List.iter (fun p -> Array.iteri (fun j v -> if not v then nd.(j) <- false) dom.(p)) ps);
      nd.(i) <- true;
      if nd <> dom.(i) then begin
        dom.(i) <- nd;
        changed := true
      end
    done
  done;
  let depth = Array.make n 0 in
  let headers_of = Array.make n [] in
  Array.iteri
    (fun u ss ->
      List.iter
        (fun h ->
          if dom.(u).(h) then begin
            (* natural loop of back edge u->h *)
            let body = Array.make n false in
            body.(h) <- true;
            let rec mark v =
              if not body.(v) then begin
                body.(v) <- true;
                List.iter mark preds.(v)
              end
            in
            mark u;
            Array.iteri
              (fun b inl ->
                if inl && not (List.mem h headers_of.(b)) then begin
                  headers_of.(b) <- h :: headers_of.(b);
                  depth.(b) <- depth.(b) + 1
                end)
              body
          end)
        ss)
    succs;
  fun label -> match Hashtbl.find_opt index label with Some i -> depth.(i) | None -> 0

(* ---------- candidate collection ---------- *)

let keyed_const_global (m : Ir.modul) g k =
  match Ir.find_global m g with
  | Some gl -> gl.Ir.g_section = Keys.keyed_rodata_section k
  | None -> false

(* single-static-definition temps: params count as one definition *)
let def_counts (f : Ir.func) =
  let counts = Array.make (max f.Ir.f_ntemps 1) 0 in
  List.iter (fun p -> if p < Array.length counts then counts.(p) <- counts.(p) + 1) f.Ir.f_params;
  List.iter
    (fun b ->
      List.iter
        (fun i ->
          List.iter (fun d -> if d < Array.length counts then counts.(d) <- counts.(d) + 1)
            (Ir.instr_defs i))
        b.Ir.b_instrs)
    f.Ir.f_blocks;
  counts

(* label of the block defining [t], or the entry label for params *)
let def_label (f : Ir.func) t =
  if List.mem t f.Ir.f_params then
    match f.Ir.f_blocks with [] -> None | e :: _ -> Some e.Ir.b_label
  else
    List.find_opt
      (fun b -> List.exists (fun i -> List.mem t (Ir.instr_defs i)) b.Ir.b_instrs)
      f.Ir.f_blocks
    |> Option.map (fun b -> b.Ir.b_label)

(* ---------- check insertion ---------- *)

let fresh_label (f : Ir.func) base =
  let labels = List.map (fun b -> b.Ir.b_label) f.Ir.f_blocks in
  let rec go i =
    let l = Printf.sprintf "%s$%d" base i in
    if List.mem l labels then go (i + 1) else l
  in
  go 0

let check_instr (f : Ir.func) t key =
  let dst = Ir.new_temp f in
  Ir.Load
    {
      dst;
      addr = Ir.Temp t;
      offset = 0;
      width = Ir.W64;
      md = { Ir.roload_key = Some key; ro_elided = false };
    }

(* Split [b] after instruction index [idx] (-1 = before the first) into
   a zero-guard diamond: b jumps to a check block when [t] is non-zero,
   both paths continue in a new block holding the remainder. *)
let insert_guarded (f : Ir.func) b idx t key =
  let chk_lbl = fresh_label f "elide$chk" in
  let cont_lbl = fresh_label f "elide$cont" in
  let rec split i = function
    | [] -> ([], [])
    | x :: rest when i <= idx ->
      let hd, tl = split (i + 1) rest in
      (x :: hd, tl)
    | rest -> ([], rest)
  in
  let prefix, suffix = split 0 b.Ir.b_instrs in
  let saved_term = b.Ir.b_term in
  b.Ir.b_instrs <- prefix;
  b.Ir.b_term <- Ir.Cbr (Ir.Temp t, chk_lbl, cont_lbl);
  let chk =
    { Ir.b_label = chk_lbl; b_instrs = [ check_instr f t key ]; b_term = Ir.Br cont_lbl }
  in
  let cont = { Ir.b_label = cont_lbl; b_instrs = suffix; b_term = saved_term } in
  let rec ins = function
    | [] -> []
    | x :: rest when x == b -> x :: chk :: cont :: rest
    | x :: rest -> x :: ins rest
  in
  f.Ir.f_blocks <- ins f.Ir.f_blocks

let insert_pure (f : Ir.func) b idx t key =
  let chk = check_instr f t key in
  let rec go i = function
    | [] -> [ chk ]
    | x :: rest when i <= idx -> x :: go (i + 1) rest
    | rest -> chk :: rest
  in
  b.Ir.b_instrs <- go 0 b.Ir.b_instrs

(* Locate the definition point of [t] in the (possibly already split)
   CFG: [(block, index)] of the defining instruction, or [(entry, -1)]
   for params. *)
let find_def (f : Ir.func) t =
  if List.mem t f.Ir.f_params then
    match f.Ir.f_blocks with [] -> None | e :: _ -> Some (e, -1)
  else
    List.find_map
      (fun b ->
        let rec go i = function
          | [] -> None
          | x :: _ when List.mem t (Ir.instr_defs x) -> Some (b, i)
          | _ :: rest -> go (i + 1) rest
        in
        go 0 b.Ir.b_instrs)
      f.Ir.f_blocks

let insert_check (f : Ir.func) t key (proof : proof) =
  match find_def f t with
  | None -> false
  | Some (b, idx) ->
    (match proof with
    | `Pure -> insert_pure f b idx t key
    | `Guarded -> insert_guarded f b idx t key);
    true

(* ---------- driver ---------- *)

type cand = { mutable c_icalls : Ir.icall_md list; mutable c_loads : Ir.load_md list;
              mutable c_sites : string list }

let run ~prove (m : Ir.modul) =
  let total = ref zero_stats in
  List.iter
    (fun (f : Ir.func) ->
      let counts = def_counts f in
      let depth_of = loop_depths f in
      let groups : (int * int, cand) Hashtbl.t = Hashtbl.create 8 in
      let group t k =
        match Hashtbl.find_opt groups (t, k) with
        | Some c -> c
        | None ->
          let c = { c_icalls = []; c_loads = []; c_sites = [] } in
          Hashtbl.replace groups (t, k) c;
          c
      in
      let consts = ref 0 and const_icalls = ref 0 and const_loads = ref 0 in
      List.iter
        (fun b ->
          List.iter
            (fun i ->
              match i with
              | Ir.Call_indirect
                  { callee; md = { Ir.ic_roload_key = Some k; ic_elided = false; _ } as md; _ }
                -> (
                match callee with
                | Ir.Global g when keyed_const_global m g k ->
                  md.Ir.ic_elided <- true;
                  incr consts;
                  incr const_icalls
                | Ir.Temp t when t < Array.length counts && counts.(t) = 1 ->
                  let c = group t k in
                  c.c_icalls <- md :: c.c_icalls;
                  c.c_sites <- b.Ir.b_label :: c.c_sites
                | Ir.Temp _ | Ir.Global _ | Ir.Const _ | Ir.Func_addr _ -> ())
              | Ir.Load
                  {
                    addr;
                    offset = 0;
                    width = Ir.W64;
                    md = { Ir.roload_key = Some k; ro_elided = false } as md;
                    _;
                  } -> (
                match addr with
                | Ir.Global g when keyed_const_global m g k ->
                  md.Ir.ro_elided <- true;
                  incr consts;
                  incr const_loads
                | Ir.Temp t when t < Array.length counts && counts.(t) = 1 ->
                  let c = group t k in
                  c.c_loads <- md :: c.c_loads;
                  c.c_sites <- b.Ir.b_label :: c.c_sites
                | Ir.Temp _ | Ir.Global _ | Ir.Const _ | Ir.Func_addr _ -> ())
              | Ir.Bin _ | Ir.Load _ | Ir.Store _ | Ir.Lea_frame _ | Ir.Call _
              | Ir.Call_indirect _ | Ir.Vcall _ ->
                ())
            b.Ir.b_instrs)
        f.Ir.f_blocks;
      (* vcalls are never elided: the vptr cell lives in writable heap
         memory, so no static proof about it exists *)
      let fstats = ref zero_stats in
      Hashtbl.iter
        (fun (t, k) c ->
          let nsites = List.length c.c_sites in
          let ddepth = match def_label f t with Some l -> depth_of l | None -> 0 in
          let profitable =
            nsites >= 2 || List.exists (fun l -> depth_of l > ddepth) c.c_sites
          in
          if profitable then
            match prove ~func:f.Ir.f_name ~temp:t ~key:k with
            | None -> ()
            | Some proof ->
              if insert_check f t k proof then begin
                List.iter (fun (md : Ir.icall_md) -> md.Ir.ic_elided <- true) c.c_icalls;
                List.iter (fun (md : Ir.load_md) -> md.Ir.ro_elided <- true) c.c_loads;
                fstats :=
                  add_stats !fstats
                    {
                      el_icalls = List.length c.c_icalls;
                      el_loads = List.length c.c_loads;
                      el_const = 0;
                      el_checks = 1;
                      el_guards = (match proof with `Guarded -> 1 | `Pure -> 0);
                    }
              end)
        groups;
      total :=
        add_stats !total
          (add_stats !fstats
             {
               el_icalls = !const_icalls;
               el_loads = !const_loads;
               el_const = !consts;
               el_checks = 0;
               el_guards = 0;
             }))
    m.Ir.m_funcs;
  !total
