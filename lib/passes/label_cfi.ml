(* The label/ID-based CFI baseline, ported as in the paper's evaluation
   (§V-C1b): an ID — an instruction that is a no-op at the ISA level
   (lui x0, id) — is placed immediately before each indirect-call target,
   and every indirect call checks that the word preceding the target
   equals the expected ID before jumping.

   IDs for plain indirect calls are derived from the function-type
   signature (same nominal policy as ICall); IDs for virtual dispatch are
   derived from (hierarchy root, slot) so every override of a slot shares
   its caller's expected ID.  What the experiments show is the *cost* of
   achieving this in software: inline checks plus an extra data load from
   the text segment on every indirect transfer. *)

module Ir = Roload_ir.Ir

type stats = { functions_labelled : int; icalls_checked : int; vcalls_checked : int }

(* 20-bit ID fitting the lui immediate; never 0. *)
let label_of_string s =
  let h = Hashtbl.hash ("cfi" ^ s) land 0xFFFFF in
  if h = 0 then 1 else h

let label_of_sig_id sig_id = label_of_string ("sig:" ^ sig_id)
let label_of_vslot ~root ~slot = label_of_string (Printf.sprintf "vt:%s:%d" root slot)

let run (m : Ir.modul) =
  let labelled = ref 0 and icalls = ref 0 and vcalls = ref 0 in
  let assign fname id =
    match Ir.find_func m fname with
    | None -> failwith ("label_cfi: unknown function " ^ fname)
    | Some f -> (
      match f.Ir.f_cfi_id with
      | None ->
        f.Ir.f_cfi_id <- Some id;
        incr labelled
      | Some existing ->
        if existing <> id then
          failwith
            (Printf.sprintf
               "label_cfi: function %s needs two IDs (address-taken and virtual?)" fname))
  in
  let root_of_class cls =
    match List.find_opt (fun vt -> vt.Ir.vt_class = cls) m.Ir.m_vtables with
    | Some vt -> vt.Ir.vt_root
    | None -> failwith ("label_cfi: no vtable for class " ^ cls)
  in
  (* virtual-method implementations: ID per (hierarchy root, slot) *)
  List.iter
    (fun vt ->
      List.iteri
        (fun slot impl -> assign impl (label_of_vslot ~root:vt.Ir.vt_root ~slot))
        vt.Ir.vt_methods)
    m.Ir.m_vtables;
  (* address-taken plain functions: ID per type signature *)
  let label_addr_taken fname =
    match Ir.find_func m fname with
    | None -> failwith ("label_cfi: unknown function " ^ fname)
    | Some f -> assign fname (label_of_sig_id (Ir.signature_id f.Ir.f_sig))
  in
  let scan_value = function
    | Ir.Func_addr f -> label_addr_taken f
    | Ir.Temp _ | Ir.Const _ | Ir.Global _ -> ()
  in
  let vt_symbols = List.map (fun vt -> vt.Ir.vt_symbol) m.Ir.m_vtables in
  List.iter
    (fun f ->
      List.iter
        (fun b ->
          List.iter
            (fun i ->
              List.iter scan_value
                (match i with
                | Ir.Bin (_, _, a, bb) -> [ a; bb ]
                | Ir.Load { addr; _ } -> [ addr ]
                | Ir.Store { src; addr; _ } -> [ src; addr ]
                | Ir.Lea_frame _ -> []
                | Ir.Call { args; _ } -> args
                | Ir.Call_indirect { callee; args; _ } -> callee :: args
                | Ir.Vcall { obj; args; _ } -> obj :: args))
            b.Ir.b_instrs;
          (* a `return f;` takes f's address just as a store does *)
          List.iter scan_value
            (match b.Ir.b_term with
            | Ir.Br _ | Ir.Halt | Ir.Ret None -> []
            | Ir.Cbr (v, _, _) -> [ v ]
            | Ir.Ret (Some v) -> [ v ]))
        f.Ir.f_blocks)
    m.Ir.m_funcs;
  List.iter
    (fun g ->
      if not (List.mem g.Ir.g_name vt_symbols) then
        List.iter
          (function
            | Ir.G_func f -> label_addr_taken f
            | Ir.G_int _ | Ir.G_global _ -> ())
          g.Ir.g_init)
    m.Ir.m_globals;
  (* checks at call sites *)
  List.iter
    (fun f ->
      List.iter
        (fun b ->
          List.iter
            (fun i ->
              match i with
              | Ir.Call_indirect { sig_id; md; _ } ->
                md.Ir.ic_cfi_label <- Some (label_of_sig_id sig_id);
                incr icalls
              | Ir.Vcall { class_name; slot; md; _ } ->
                md.Ir.vc_cfi_label <-
                  Some (label_of_vslot ~root:(root_of_class class_name) ~slot);
                incr vcalls
              | Ir.Bin _ | Ir.Load _ | Ir.Store _ | Ir.Lea_frame _ | Ir.Call _ -> ())
            b.Ir.b_instrs)
        f.Ir.f_blocks)
    m.Ir.m_funcs;
  { functions_labelled = !labelled; icalls_checked = !icalls; vcalls_checked = !vcalls }
