(* The ICall defense — type-based forward-edge CFI (paper §IV-B, Listings
   1–3): every address-taken function gets a one-slot global function
   pointer table (GFPT) entry placed in a read-only page keyed by the
   function's *type*; function-pointer values are rewritten to point at
   the GFPT entry; and indirect calls load the real target through ld.ro
   with the matching type key.  An indirect call can therefore only reach
   address-taken functions of the matching type.

   As in the paper's evaluation (§V-C1b), vtables are protected with one
   unified key (better TLB/cache locality), while other function pointers
   get per-type keys. *)

module Ir = Roload_ir.Ir
module Ext = Roload_isa.Roload_ext

type stats = {
  gfpt_entries : int;
  icalls_protected : int;
  vcalls_protected : int;
  type_keys_used : int;
}

let gfpt_symbol ~sig_id ~func = Printf.sprintf "__gfpt$%s$%s" sig_id func

let run (m : Ir.modul) =
  let keys = Keys.create () in
  let func_sig name =
    match Ir.find_func m name with
    | Some f -> f.Ir.f_sig
    | None -> failwith ("icall pass: unknown function " ^ name)
  in
  let vt_symbols = List.map (fun vt -> vt.Ir.vt_symbol) m.Ir.m_vtables in
  (* gfpt creation is memoized per function *)
  let gfpts = ref [] in
  let gfpt_for fname =
    let sig_id = Ir.signature_id (func_sig fname) in
    let sym = gfpt_symbol ~sig_id ~func:fname in
    if not (List.mem_assoc sym !gfpts) then begin
      let key = Keys.key_for keys sig_id in
      gfpts :=
        (sym,
         { Ir.g_name = sym; g_section = Keys.keyed_rodata_section key;
           g_init = [ Ir.G_func fname ]; g_bytes = None; g_zero = 0 })
        :: !gfpts
    end;
    sym
  in
  let rewrite_value v =
    match v with
    | Ir.Func_addr f -> Ir.Global (gfpt_for f)
    | Ir.Temp _ | Ir.Const _ | Ir.Global _ -> v
  in
  let icalls = ref 0 and vcalls = ref 0 in
  let rewrite_instr i =
    match i with
    | Ir.Bin (op, d, a, b) -> Ir.Bin (op, d, rewrite_value a, rewrite_value b)
    | Ir.Load { dst; addr; offset; width; md } ->
      Ir.Load { dst; addr = rewrite_value addr; offset; width; md }
    | Ir.Store { src; addr; offset; width } ->
      Ir.Store { src = rewrite_value src; addr = rewrite_value addr; offset; width }
    | Ir.Lea_frame _ -> i
    | Ir.Call { dst; callee; args } ->
      Ir.Call { dst; callee; args = List.map rewrite_value args }
    | Ir.Call_indirect { dst; callee; args; sig_id; md } ->
      md.Ir.ic_roload_key <- Some (Keys.key_for keys sig_id);
      incr icalls;
      Ir.Call_indirect
        { dst; callee = rewrite_value callee; args = List.map rewrite_value args; sig_id; md }
    | Ir.Vcall { dst; obj; slot; class_name; args; md } ->
      md.Ir.vc_roload_key <- Some Ext.key_vtable_unified;
      incr vcalls;
      Ir.Vcall
        { dst; obj = rewrite_value obj; slot; class_name;
          args = List.map rewrite_value args; md }
  in
  (* terminators carry values too: a `return f;` escapes the raw code
     address to the caller unless it is redirected like any other use *)
  let rewrite_term t =
    match t with
    | Ir.Br _ | Ir.Halt -> t
    | Ir.Cbr (v, a, b) -> Ir.Cbr (rewrite_value v, a, b)
    | Ir.Ret v -> Ir.Ret (Option.map rewrite_value v)
  in
  List.iter
    (fun f ->
      List.iter
        (fun b ->
          b.Ir.b_instrs <- List.map rewrite_instr b.Ir.b_instrs;
          b.Ir.b_term <- rewrite_term b.Ir.b_term)
        f.Ir.f_blocks)
    m.Ir.m_funcs;
  (* rewrite function addresses stored in non-vtable global initializers
     (e.g. constant dispatch tables), and move vtables to the unified key *)
  m.Ir.m_globals <-
    List.map
      (fun g ->
        if List.mem g.Ir.g_name vt_symbols then
          { g with Ir.g_section = Keys.keyed_rodata_section Ext.key_vtable_unified }
        else
          {
            g with
            Ir.g_init =
              List.map
                (function
                  | Ir.G_func f -> Ir.G_global (gfpt_for f)
                  | (Ir.G_int _ | Ir.G_global _) as w -> w)
                g.Ir.g_init;
          })
      m.Ir.m_globals;
  m.Ir.m_globals <- m.Ir.m_globals @ List.rev_map snd !gfpts;
  {
    gfpt_entries = List.length !gfpts;
    icalls_protected = !icalls;
    vcalls_protected = !vcalls;
    type_keys_used = Keys.count keys;
  }
