(* The reference oracle: a big-step interpreter for the unhardened IR.

   The interpreter executes programs in a synthetic address space (its
   function/global/frame/heap addresses are unrelated to the linker's),
   so it can only predict behavior that does not depend on layout.  Two
   things make the prediction exact anyway:

   - arithmetic reuses [Roload_machine.Alu], the pure RV64 semantics
     module (division by zero, signed-overflow, 6-bit shift masking are
     the machine's, not OCaml's), and [print_int] mirrors the runtime's
     assembly digit loop byte for byte (see DESIGN.md §9 on why mirrored
     oracles co-inherit bugs — both sides of this pair once mishandled
     Int64.min_int in the same way, and were fixed together);

   - scheme policy is evaluated *structurally* at each indirect transfer
     using the same identities the passes bake into keys and labels:
     signature-id equality for ICall's per-type GFPT keys, hierarchy
     roots for VCall's per-hierarchy vtable keys, membership in any
     genuine vtable for ICall's unified vtable key, read-only-region
     membership for VTint, and the passes' own 20-bit label hashes for
     the CFI baseline (so even hash collisions are predicted faithfully).

   Anything layout-dependent (wild addresses, calls through non-function
   words, arity-extending confusion) raises [Unsupported]; the generator
   is designed never to produce it, and the differential runner skips
   such cases rather than guessing. *)

module Ir = Roload_ir.Ir
module Pass = Roload_passes.Pass
module Label_cfi = Roload_passes.Label_cfi
module Trapclass = Roload_security.Trapclass
module Alu = Roload_machine.Alu
module Inst = Roload_isa.Inst

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

type behavior = { stop : Trapclass.stop; output : string }

let behavior_to_string b =
  Printf.sprintf "%s output=%S" (Trapclass.stop_name b.stop) b.output

let behavior_equal a b =
  Trapclass.stop_equal a.stop b.stop && String.equal a.output b.output

(* raised to unwind when the program reaches a final status *)
exception Stopped of Trapclass.stop

type region = { r_base : int64; r_size : int; r_writable : bool; r_name : string }

type state = {
  m : Ir.modul;
  scheme : Pass.scheme;
  mem : (int64, int) Hashtbl.t; (* byte-granular; absent = 0 within a region *)
  mutable regions : region list;
  funcs_by_addr : (int64, Ir.func) Hashtbl.t;
  func_addr : (string, int64) Hashtbl.t;
  global_addr : (string, int64) Hashtbl.t;
  mutable vtables : (int64 * int * Ir.vtable_info) list;
  cfi_label : (string, int) Hashtbl.t;
  out : Buffer.t;
  mutable fuel : int;
  mutable stack_ptr : int64; (* bump pointer inside the frame region *)
  mutable heap_ptr : int64;
  mutable depth : int;
}

(* ---------- synthetic address space ---------- *)

let text_base = 0x0100_0000L
let global_base = 0x0200_0000L
let frame_base = 0x0300_0000L
let frame_size = 1 lsl 20
let heap_base = 0x0400_0000L
let heap_size = 1 lsl 20

let region_of st va =
  List.find_opt
    (fun r ->
      Int64.unsigned_compare va r.r_base >= 0
      && Int64.unsigned_compare va (Int64.add r.r_base (Int64.of_int r.r_size)) < 0)
    st.regions

(* The machine's null page is guaranteed unmapped (link base 0x10000), so
   a near-null access is the one layout-independent plain segfault. *)
let null_page va = Int64.unsigned_compare va 4096L < 0

let check_mapped st va ~write =
  match region_of st va with
  | Some r when (not write) || r.r_writable -> ()
  | Some r -> (
    ignore r;
    (* mapped but read-only: the machine faults the store deterministically *)
    raise (Stopped (Trapclass.Trap Trapclass.Segfault)))
  | None ->
    if null_page va then raise (Stopped (Trapclass.Trap Trapclass.Segfault))
    else unsupported "access to unmapped synthetic address 0x%Lx" va

let read_byte st va =
  check_mapped st va ~write:false;
  match Hashtbl.find_opt st.mem va with Some b -> b | None -> 0

let write_byte st va b =
  check_mapped st va ~write:true;
  Hashtbl.replace st.mem va (b land 0xff)

let read_u64 st va =
  let v = ref 0L in
  for i = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8)
           (Int64.of_int (read_byte st (Int64.add va (Int64.of_int i))))
  done;
  !v

let write_u64 st va x =
  for i = 0 to 7 do
    write_byte st (Int64.add va (Int64.of_int i))
      (Int64.to_int (Int64.shift_right_logical x (8 * i)) land 0xff)
  done

(* unchecked pokes: image construction writes read-only sections too *)
let poke_byte st va b = Hashtbl.replace st.mem va (b land 0xff)

let poke_u64 st va x =
  for i = 0 to 7 do
    poke_byte st (Int64.add va (Int64.of_int i))
      (Int64.to_int (Int64.shift_right_logical x (8 * i)) land 0xff)
  done

let add_region st r = st.regions <- r :: st.regions

(* ---------- setup ---------- *)

let global_size g =
  (8 * List.length g.Ir.g_init)
  + (match g.Ir.g_bytes with Some b -> String.length b | None -> 0)
  + g.Ir.g_zero

let align16 n = (n + 15) land lnot 15

let build_cfi_labels (m : Ir.modul) =
  (* mirrors Label_cfi.run's assignment: vtable impls first (per root and
     slot), then address-taken plain functions (per signature id); a
     function needing two different IDs is a compile failure there and
     Unsupported here *)
  let tbl = Hashtbl.create 16 in
  let assign fname id =
    match Hashtbl.find_opt tbl fname with
    | None -> Hashtbl.replace tbl fname id
    | Some existing ->
      if existing <> id then unsupported "cfi: %s needs two labels" fname
  in
  List.iter
    (fun vt ->
      List.iteri
        (fun slot impl ->
          assign impl (Label_cfi.label_of_vslot ~root:vt.Ir.vt_root ~slot))
        vt.Ir.vt_methods)
    m.Ir.m_vtables;
  let label_addr_taken fname =
    match Ir.find_func m fname with
    | None -> unsupported "cfi: address of unknown function %s" fname
    | Some f -> assign fname (Label_cfi.label_of_sig_id (Ir.signature_id f.Ir.f_sig))
  in
  let scan_value = function
    | Ir.Func_addr f -> label_addr_taken f
    | Ir.Temp _ | Ir.Const _ | Ir.Global _ -> ()
  in
  List.iter
    (fun f ->
      List.iter
        (fun b ->
          List.iter
            (fun i ->
              List.iter scan_value
                (match i with
                | Ir.Bin (_, _, a, bb) -> [ a; bb ]
                | Ir.Load { addr; _ } -> [ addr ]
                | Ir.Store { src; addr; _ } -> [ src; addr ]
                | Ir.Lea_frame _ -> []
                | Ir.Call { args; _ } -> args
                | Ir.Call_indirect { callee; args; _ } -> callee :: args
                | Ir.Vcall { obj; args; _ } -> obj :: args))
            b.Ir.b_instrs)
        f.Ir.f_blocks)
    m.Ir.m_funcs;
  let vt_symbols = List.map (fun vt -> vt.Ir.vt_symbol) m.Ir.m_vtables in
  List.iter
    (fun g ->
      if not (List.mem g.Ir.g_name vt_symbols) then
        List.iter
          (function
            | Ir.G_func f -> label_addr_taken f
            | Ir.G_int _ | Ir.G_global _ -> ())
          g.Ir.g_init)
    m.Ir.m_globals;
  tbl

let create ~scheme (m : Ir.modul) =
  let st =
    {
      m;
      scheme;
      mem = Hashtbl.create 1024;
      regions = [];
      funcs_by_addr = Hashtbl.create 16;
      func_addr = Hashtbl.create 16;
      global_addr = Hashtbl.create 16;
      vtables = [];
      cfi_label = build_cfi_labels m;
      out = Buffer.create 64;
      fuel = 0;
      stack_ptr = frame_base;
      heap_ptr = heap_base;
      depth = 0;
    }
  in
  (* function addresses: synthetic, spaced, never dereferencable as data *)
  List.iteri
    (fun i f ->
      let addr = Int64.add text_base (Int64.of_int (64 * (i + 1))) in
      Hashtbl.replace st.func_addr f.Ir.f_name addr;
      Hashtbl.replace st.funcs_by_addr addr f)
    m.Ir.m_funcs;
  (* globals: addresses first (initializers may forward-reference) *)
  let cursor = ref global_base in
  List.iter
    (fun g ->
      Hashtbl.replace st.global_addr g.Ir.g_name !cursor;
      let size = max 8 (align16 (global_size g)) in
      add_region st
        {
          r_base = !cursor;
          r_size = size;
          r_writable = g.Ir.g_section <> ".rodata";
          r_name = g.Ir.g_name;
        };
      cursor := Int64.add !cursor (Int64.of_int size))
    m.Ir.m_globals;
  add_region st
    { r_base = frame_base; r_size = frame_size; r_writable = true; r_name = "stack" };
  (* initializer contents *)
  List.iter
    (fun g ->
      let base = Hashtbl.find st.global_addr g.Ir.g_name in
      List.iteri
        (fun i w ->
          let va = Int64.add base (Int64.of_int (8 * i)) in
          match w with
          | Ir.G_int v -> poke_u64 st va v
          | Ir.G_func f -> (
            match Hashtbl.find_opt st.func_addr f with
            | Some a -> poke_u64 st va a
            | None -> unsupported "initializer references unknown function %s" f)
          | Ir.G_global s -> (
            match Hashtbl.find_opt st.global_addr s with
            | Some a -> poke_u64 st va a
            | None -> unsupported "initializer references unknown global %s" s))
        g.Ir.g_init;
      match g.Ir.g_bytes with
      | Some bytes ->
        let off = 8 * List.length g.Ir.g_init in
        String.iteri
          (fun i c ->
            poke_byte st (Int64.add base (Int64.of_int (off + i))) (Char.code c))
          bytes
      | None -> ())
    m.Ir.m_globals;
  (* vtable extents for the policy checks *)
  st.vtables <-
    List.filter_map
      (fun vt ->
        match Hashtbl.find_opt st.global_addr vt.Ir.vt_symbol with
        | Some base -> Some (base, 8 * List.length vt.Ir.vt_methods, vt)
        | None -> None)
      m.Ir.m_vtables;
  st

(* ---------- value and operator semantics ---------- *)

let eval_value st regs = function
  | Ir.Temp t -> regs.(t)
  | Ir.Const c -> c
  | Ir.Global g -> (
    match Hashtbl.find_opt st.global_addr g with
    | Some a -> a
    | None -> unsupported "unknown global %s" g)
  | Ir.Func_addr f -> (
    match Hashtbl.find_opt st.func_addr f with
    | Some a -> a
    | None -> unsupported "address of unknown function %s" f)

let bool64 b = if b then 1L else 0L

let binop (op : Ir.binop) a b =
  match op with
  | Ir.Add -> Alu.op Inst.Add a b
  | Ir.Sub -> Alu.op Inst.Sub a b
  | Ir.Mul -> Alu.mulop Inst.Mul a b
  | Ir.Div -> Alu.mulop Inst.Div a b
  | Ir.Rem -> Alu.mulop Inst.Rem a b
  | Ir.And -> Alu.op Inst.And a b
  | Ir.Or -> Alu.op Inst.Or a b
  | Ir.Xor -> Alu.op Inst.Xor a b
  | Ir.Shl -> Alu.op Inst.Sll a b
  | Ir.Shr -> Alu.op Inst.Sra a b
  | Ir.Shru -> Alu.op Inst.Srl a b
  | Ir.Eq -> bool64 (Int64.equal a b)
  | Ir.Ne -> bool64 (not (Int64.equal a b))
  | Ir.Lt -> bool64 (Int64.compare a b < 0)
  | Ir.Le -> bool64 (Int64.compare a b <= 0)
  | Ir.Gt -> bool64 (Int64.compare a b > 0)
  | Ir.Ge -> bool64 (Int64.compare a b >= 0)

(* ---------- builtins (mirror runtime.ml exactly) ---------- *)

(* the runtime's digit loop: iterate on the NEGATIVE absolute value
   (every int64 has one; Int64.min_int has no positive counterpart), so
   remainders land in -9..0 and are negated into digits.  Int64.rem
   matches RISC-V rem: the remainder takes the dividend's sign. *)
let print_int st v =
  let neg = Int64.compare v 0L < 0 in
  let t2 = ref (if neg then v else Int64.neg v) in
  let digits = ref [] in
  let continue_ = ref true in
  while !continue_ do
    let r = Int64.neg (Int64.rem !t2 10L) in
    digits := Int64.to_int (Int64.add r 48L) land 0xff :: !digits;
    t2 := Int64.div !t2 10L;
    if Int64.equal !t2 0L then continue_ := false
  done;
  if neg then Buffer.add_char st.out '-';
  List.iter (fun b -> Buffer.add_char st.out (Char.chr b)) !digits

let print_str st va =
  let rec go va =
    let b = read_byte st va in
    if b <> 0 then begin
      Buffer.add_char st.out (Char.chr b);
      go (Int64.add va 1L)
    end
  in
  go va

let alloc st n =
  let n = Int64.to_int n in
  if n < 0 || n > heap_size then unsupported "alloc of %d bytes" n;
  let size = (n + 7) land lnot 7 in
  let ptr = st.heap_ptr in
  st.heap_ptr <- Int64.add st.heap_ptr (Int64.of_int size);
  if Int64.unsigned_compare st.heap_ptr (Int64.add heap_base (Int64.of_int heap_size)) > 0
  then unsupported "heap exhausted";
  add_region st { r_base = ptr; r_size = size; r_writable = true; r_name = "heap" };
  ptr

let builtin st name args =
  let arg i = try List.nth args i with _ -> unsupported "builtin %s arity" name in
  match name with
  | "print_int" ->
    print_int st (arg 0);
    None
  | "print_char" ->
    Buffer.add_char st.out (Char.chr (Int64.to_int (arg 0) land 0xff));
    None
  | "print_str" ->
    print_str st (arg 0);
    None
  | "exit" -> raise (Stopped (Trapclass.Exit (Int64.to_int (arg 0))))
  | "alloc" -> Some (alloc st (arg 0))
  | _ -> unsupported "call to unknown function %s" name

(* ---------- scheme policy at indirect transfers ---------- *)

let func_at st va = Hashtbl.find_opt st.funcs_by_addr va

let vtable_containing st va =
  List.find_opt
    (fun (base, size, _) ->
      Int64.unsigned_compare va base >= 0
      && Int64.unsigned_compare va (Int64.add base (Int64.of_int size)) < 0)
    st.vtables

let in_ro_region st va =
  match region_of st va with Some r -> not r.r_writable | None -> false

let root_of_class st cls =
  match List.find_opt (fun vt -> vt.Ir.vt_class = cls) st.m.Ir.m_vtables with
  | Some vt -> vt.Ir.vt_root
  | None -> unsupported "no vtable for class %s" cls

let cfi_label_of st fname =
  match Hashtbl.find_opt st.cfi_label fname with
  | Some l -> l
  | None -> unsupported "cfi: indirect target %s has no label" fname

let trap k = raise (Stopped (Trapclass.Trap k))

(* ---------- execution ---------- *)

let rec exec_func st (f : Ir.func) (args : int64 list) : int64 option =
  if st.depth > 200 then unsupported "recursion too deep";
  st.depth <- st.depth + 1;
  let regs = Array.make (max 1 f.Ir.f_ntemps) 0L in
  let nparams = List.length f.Ir.f_params in
  if nparams > List.length args then
    unsupported "%s: %d params but only %d staged arguments" f.Ir.f_name nparams
      (List.length args);
  List.iteri (fun i t -> regs.(t) <- List.nth args i) f.Ir.f_params;
  (* per-activation frame slots *)
  let saved_sp = st.stack_ptr in
  let frame =
    List.map
      (fun s ->
        let size = (max 8 s.Ir.slot_size + 7) land lnot 7 in
        let addr = st.stack_ptr in
        st.stack_ptr <- Int64.add st.stack_ptr (Int64.of_int size);
        if
          Int64.unsigned_compare st.stack_ptr
            (Int64.add frame_base (Int64.of_int frame_size))
          > 0
        then unsupported "stack exhausted";
        (* fresh machine stack bytes are unspecified; the generator only
           reads slots it wrote, but zero them for determinism anyway *)
        for i = 0 to size - 1 do
          Hashtbl.replace st.mem (Int64.add addr (Int64.of_int i)) 0
        done;
        (s.Ir.slot_id, addr))
      f.Ir.f_frame_slots
  in
  let entry =
    match f.Ir.f_blocks with
    | b :: _ -> b
    | [] -> unsupported "%s has no blocks" f.Ir.f_name
  in
  let result = exec_block st f regs frame entry in
  st.stack_ptr <- saved_sp;
  st.depth <- st.depth - 1;
  result

and exec_block st f regs frame (b : Ir.block) : int64 option =
  List.iter (exec_instr st f regs frame) b.Ir.b_instrs;
  match b.Ir.b_term with
  | Ir.Br l -> branch st f regs frame l
  | Ir.Cbr (v, l1, l2) ->
    branch st f regs frame
      (if not (Int64.equal (eval_value st regs v) 0L) then l1 else l2)
  | Ir.Ret (Some v) -> Some (eval_value st regs v)
  | Ir.Ret None -> None
  | Ir.Halt -> trap Trapclass.Check_abort (* codegen lowers Halt to ebreak *)

and branch st f regs frame l =
  match Ir.find_block f l with
  | Some b -> exec_block st f regs frame b
  | None -> unsupported "%s: missing block %s" f.Ir.f_name l

and exec_instr st f regs frame (i : Ir.instr) =
  st.fuel <- st.fuel - 1;
  if st.fuel <= 0 then unsupported "out of fuel";
  let ev = eval_value st regs in
  match i with
  | Ir.Bin (op, dst, a, b) -> regs.(dst) <- binop op (ev a) (ev b)
  | Ir.Load { dst; addr; offset; width; md = _ } -> (
    let ea = Int64.add (ev addr) (Int64.of_int offset) in
    match width with
    | Ir.W8 ->
      (* the code generator emits a signed byte load for W8 *)
      let b = read_byte st ea in
      regs.(dst) <- Int64.of_int (if b >= 0x80 then b - 0x100 else b)
    | Ir.W64 -> regs.(dst) <- read_u64 st ea)
  | Ir.Store { src; addr; offset; width } -> (
    let ea = Int64.add (ev addr) (Int64.of_int offset) in
    match width with
    | Ir.W8 -> write_byte st ea (Int64.to_int (ev src) land 0xff)
    | Ir.W64 -> write_u64 st ea (ev src))
  | Ir.Lea_frame (t, slot) -> (
    match List.assoc_opt slot frame with
    | Some addr -> regs.(t) <- addr
    | None -> unsupported "%s: unknown frame slot %d" f.Ir.f_name slot)
  | Ir.Call { dst; callee; args } -> (
    let vargs = List.map ev args in
    match Ir.find_func st.m callee with
    | Some callee_f -> finish_call st regs dst (exec_func st callee_f vargs)
    | None -> finish_call st regs dst (builtin st callee vargs))
  | Ir.Call_indirect { dst; callee; args; sig_id; md = _ } -> (
    let target = ev callee in
    let vargs = List.map ev args in
    match func_at st target with
    | None -> unsupported "indirect call to non-function value 0x%Lx" target
    | Some callee_f ->
      let invoke () = finish_call st regs dst (exec_func st callee_f vargs) in
      (match st.scheme with
      | Pass.Unprotected | Pass.Retcall | Pass.Vcall | Pass.Vtint_baseline ->
        invoke ()
      | Pass.Icall ->
        (* the GFPT slot for [callee_f] lives in the section keyed by its
           own signature id; the call site's ld.ro uses the static one *)
        if Ir.signature_id callee_f.Ir.f_sig = sig_id then invoke ()
        else trap Trapclass.Roload_fault
      | Pass.Cfi_baseline ->
        if cfi_label_of st callee_f.Ir.f_name = Label_cfi.label_of_sig_id sig_id
        then invoke ()
        else trap Trapclass.Check_abort))
  | Ir.Vcall { dst; obj; slot; class_name; args; md = _ } -> (
    let obj_v = ev obj in
    let vptr = read_u64 st obj_v in
    let vea = Int64.add vptr (Int64.of_int (8 * slot)) in
    let vargs = obj_v :: List.map ev args in
    let resolve () =
      let entry = read_u64 st vea in
      match func_at st entry with
      | Some callee_f -> callee_f
      | None -> unsupported "vtable entry 0x%Lx is not a function" entry
    in
    let invoke callee_f = finish_call st regs dst (exec_func st callee_f vargs) in
    match st.scheme with
    | Pass.Unprotected | Pass.Retcall -> invoke (resolve ())
    | Pass.Vcall -> (
      (* per-hierarchy keyed ld.ro: the entry address must fall inside a
         genuine vtable of this class's hierarchy *)
      match vtable_containing st vea with
      | Some (_, _, vt) when vt.Ir.vt_root = root_of_class st class_name ->
        invoke (resolve ())
      | Some _ | None -> trap Trapclass.Roload_fault)
    | Pass.Icall -> (
      (* unified vtable key: any genuine vtable passes *)
      match vtable_containing st vea with
      | Some _ -> invoke (resolve ())
      | None -> trap Trapclass.Roload_fault)
    | Pass.Vtint_baseline ->
      if in_ro_region st vptr then invoke (resolve ())
      else trap Trapclass.Check_abort
    | Pass.Cfi_baseline ->
      let callee_f = resolve () in
      if
        cfi_label_of st callee_f.Ir.f_name
        = Label_cfi.label_of_vslot ~root:(root_of_class st class_name) ~slot
      then invoke callee_f
      else trap Trapclass.Check_abort)

and finish_call st regs dst ret =
  ignore st;
  match (dst, ret) with
  | None, _ -> ()
  | Some d, Some v -> regs.(d) <- v
  | Some _, None -> unsupported "value of a void call"

(* ---------- entry point ---------- *)

let run ?(fuel = 5_000_000) ~scheme (m : Ir.modul) =
  let st = create ~scheme m in
  st.fuel <- fuel;
  let stop =
    try
      match Ir.find_func m "main" with
      | None -> unsupported "no main"
      | Some main -> (
        match exec_func st main [] with
        | Some v -> Trapclass.Exit (Int64.to_int v)
        | None -> unsupported "main returns no value")
    with Stopped s -> s
  in
  { stop; output = Buffer.contents st.out }
