(** The differential runner: compile one MiniC program under every
    hardening scheme and check IR-oracle ≡ single-step engine ≡
    block-cached engine ≡ trace-compiled engine, including trap
    equivalence — a program the oracle says must SIGSEGV with the ROLoad
    triage must do so on every engine, and must not trap under [none]. *)

module Pass = Roload_passes.Pass
module Ir = Roload_ir.Ir

type divergence = {
  dv_scheme : Pass.scheme;
  dv_stage : string;
      (** which pair disagreed: ["oracle-vs-<engine>"] on behavior, or
          ["<engine0>-vs-<engine>"] on cycle/instruction counters *)
  dv_expected : string;
  dv_actual : string;
}

type case_result =
  | Agree of (Pass.scheme * Ir_eval.behavior) list
      (** per-scheme oracle-confirmed behavior *)
  | Skipped of string
      (** the oracle declined the program (layout-dependent shape) or the
          compiler rejected it *)
  | Divergent of divergence

val schemes_under_test : Pass.scheme list

val engines_under_test : Roload_machine.Machine.engine list
(** The default machine-engine matrix: single-step reference,
    block-cached, trace-compiled. *)

val oracle_behaviors :
  ?schemes:Pass.scheme list ->
  string ->
  (Pass.scheme * Ir_eval.behavior) list
(** Oracle predictions per scheme for a MiniC source (raises
    {!Ir_eval.Unsupported} / [Toolchain.Compile_error] like the oracle
    itself). *)

val run_source :
  ?schemes:Pass.scheme list ->
  ?engines:Roload_machine.Machine.engine list ->
  ?max_instructions:int64 ->
  ?fuel:int ->
  ?elide:bool ->
  ?sabotage:(Pass.scheme -> Ir.modul -> bool) ->
  name:string ->
  string ->
  case_result
(** [run_source ~name source] performs the full differential check.
    [engines] (default {!engines_under_test}, [[]] means the default)
    restricts the machine-engine side of the matrix — e.g. [--engine
    traced] campaigns whose per-case outcome matrices are byte-diffed
    against [--engine block] ones; the first listed engine anchors the
    cycle-exactness comparison.  The machine runs force the trace
    hotness threshold to 1 so short programs still compile traces.
    [sabotage] is the mutation-self-check hook: it runs after the
    hardening pass and before code generation for each scheme and may
    plant a miscompile, returning whether it changed anything (the
    oracle still predicts the *correct* behavior, so a working fuzzer
    must flag the case as divergent).  [elide] (default false) compiles
    every scheme with proof-guided ld.ro check elision; the oracle still
    interprets the unhardened IR, so elision is invisible to it and any
    behavioral effect of the rewrite surfaces as a divergence. *)

val sabotage_drop_gfpt : Pass.scheme -> Ir.modul -> bool
(** The canonical planted miscompile: under ICall, revert the GFPT
    redirect of the first indirect call whose callee is a GFPT slot, so
    its ld.ro hits an executable page instead of the keyed table. *)
