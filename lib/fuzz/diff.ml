(* The differential runner.

   For each scheme: the oracle interprets the freshly-lowered, unhardened
   IR; the compiled pipeline (parse → lower → optimize → pass → codegen →
   assemble → link) runs on every execution engine (single-step
   reference, block-cached, trace-compiled) under the full ROLoad system
   variant.  All observations must agree on the stop class (exit code /
   ROLoad fault / check abort / plain segfault) and on the exact output
   bytes; the engines must additionally agree on cycle and instruction
   counts (they are documented cycle-exact).  The trace hotness threshold
   is lowered to 1 for the machine runs, so even short generated programs
   exercise the trace compiler rather than skating by on the block
   engine.

   The oracle's fuel and the machines' instruction budget are deliberately
   far apart (200k IR steps vs 50M machine instructions) so a program the
   oracle can finish can never time out on the machine — a machine
   timeout against an oracle exit is therefore a real divergence. *)

module Ir = Roload_ir.Ir
module Pass = Roload_passes.Pass
module Toolchain = Core.Toolchain
module System = Core.System
module Machine = Roload_machine.Machine
module Trapclass = Roload_security.Trapclass

type divergence = {
  dv_scheme : Pass.scheme;
  dv_stage : string;
  dv_expected : string;
  dv_actual : string;
}

type case_result =
  | Agree of (Pass.scheme * Ir_eval.behavior) list
  | Skipped of string
  | Divergent of divergence

let schemes_under_test = Pass.all_schemes

let engines_under_test =
  [ Machine.Single_step; Machine.Block_cached; Machine.Traced ]

let lower_fresh ~name source =
  let ast = Roload_front.Parser.parse source in
  Roload_front.Lower.lower ast ~module_name:name

let oracle_behaviors ?(schemes = schemes_under_test) source =
  let m = lower_fresh ~name:"oracle" source in
  List.map (fun scheme -> (scheme, Ir_eval.run ~scheme m)) schemes

(* the toolchain pipeline with a post-pass hook, for --check-oracle *)
let compile_sabotaged ~scheme ~sabotage ~name source =
  Toolchain.(
    wrap_errors (fun () ->
        let m = lower_fresh ~name source in
        Roload_ir.Verify.check_module_exn m;
        ignore (Roload_passes.Constfold.run m);
        ignore (Roload_passes.Dce.run m);
        Roload_ir.Verify.check_module_exn m;
        ignore (Pass.apply scheme m);
        let bit = sabotage scheme m in
        let asm_items = Roload_codegen.Codegen.emit_module m in
        let obj =
          Roload_asm.Assemble.assemble
            ~options:{ Roload_asm.Assemble.compress = true }
            asm_items
        in
        let exe =
          Roload_link.Linker.link
            ~options:
              { Roload_link.Linker.default_options with separate_code = true }
            [ obj; runtime_object ~compress:true ]
        in
        (exe, bit)))

(* Disable the GFPT redirect on the first protected indirect call: the
   ICall pass rewrites every function-pointer value to a GFPT slot
   address and marks the call site with [ic_roload_key] so codegen loads
   the real target through ld.ro.  Clearing the key drops that load, so
   the machine jumps straight to the slot address — a read-only data
   word, not code — and any benign indirect call the oracle expects to
   succeed diverges. *)
let sabotage_drop_gfpt scheme (m : Ir.modul) =
  if scheme <> Pass.Icall then false
  else begin
    let bit = ref false in
    List.iter
      (fun f ->
        List.iter
          (fun b ->
            List.iter
              (fun i ->
                match i with
                | Ir.Call_indirect { md; _ }
                  when (not !bit) && md.Ir.ic_roload_key <> None ->
                  bit := true;
                  md.Ir.ic_roload_key <- None
                | _ -> ())
              b.Ir.b_instrs)
          f.Ir.f_blocks)
      m.Ir.m_funcs;
    !bit
  end

let behavior_of_measurement (ms : System.measurement) =
  { Ir_eval.stop = Trapclass.stop_of_status ms.System.status; output = ms.System.output }

(* One pristine boot image per engine, forked for every machine run.
   Forking a just-created machine is bit-identical to [Machine.create]
   (the snapshot and campaign-equivalence suites pin this), and CoW page
   sharing makes each fork O(touched pages), so a fuzz campaign pays the
   64 MiB physical-memory boot once per engine instead of 18 times per
   case.  Templates are captured lazily inside [run_source]'s
   hot-threshold window, so the image (and therefore every fork) carries
   the fuzz threshold of 1 and still exercises the trace compiler. *)
let template_lock = Mutex.create ()
let boot_templates : (Machine.engine, Machine.image) Hashtbl.t = Hashtbl.create 4

let boot_template engine =
  Mutex.protect template_lock (fun () ->
      match Hashtbl.find_opt boot_templates engine with
      | Some img -> img
      | None ->
        let img =
          Machine.snapshot
            (Machine.create ~engine
               (System.machine_config System.Processor_kernel_modified))
        in
        Hashtbl.add boot_templates engine img;
        img)

let run_source ?(schemes = schemes_under_test) ?(engines = engines_under_test)
    ?(max_instructions = 50_000_000L) ?(fuel = 200_000) ?(elide = false) ?sabotage
    ~name source =
  let engines = if engines = [] then engines_under_test else engines in
  (* one unhardened lowering for the oracle; each scheme re-enters the
     full pipeline from source, parser included *)
  match
    let m = lower_fresh ~name source in
    List.map (fun scheme -> (scheme, Ir_eval.run ~fuel ~scheme m)) schemes
  with
  | exception Ir_eval.Unsupported r -> Skipped ("oracle: " ^ r)
  | exception Toolchain.Compile_error e -> Skipped ("compile: " ^ e)
  | exception Roload_front.Parser.Parse_error { line; message } ->
    Skipped (Printf.sprintf "parse (line %d): %s" line message)
  | exception Roload_front.Lower.Sema_error { line; message } ->
    Skipped (Printf.sprintf "sema (line %d): %s" line message)
  | oracle -> (
    let divergence = ref None in
    let check scheme stage ~expected ~actual =
      if !divergence = None && expected <> actual then
        divergence :=
          Some { dv_scheme = scheme; dv_stage = stage; dv_expected = expected; dv_actual = actual }
    in
    let prev_hot = Machine.default_hot_threshold () in
    Machine.set_default_hot_threshold 1;
    Fun.protect
      ~finally:(fun () -> Machine.set_default_hot_threshold prev_hot)
      (fun () ->
        try
          List.iter
            (fun (scheme, expect) ->
              if !divergence = None then begin
                let exe =
                  match sabotage with
                  | None ->
                    Toolchain.compile_exe
                      ~options:{ Toolchain.default_options with scheme; elide }
                      ~name source
                  | Some hook ->
                    fst (compile_sabotaged ~scheme ~sabotage:hook ~name source)
                in
                let run engine =
                  ( engine,
                    System.run ~max_instructions ~template:(boot_template engine)
                      ~variant:System.Processor_kernel_modified exe )
                in
                let runs = List.map run engines in
                let exp_s = Ir_eval.behavior_to_string expect in
                List.iter
                  (fun (engine, ms) ->
                    check scheme
                      ("oracle-vs-" ^ Machine.engine_name engine)
                      ~expected:exp_s
                      ~actual:(Ir_eval.behavior_to_string (behavior_of_measurement ms)))
                  runs;
                (* engines are documented cycle-exact: pin every engine's
                   counters to the first one's *)
                let counters (ms : System.measurement) =
                  Printf.sprintf "cycles=%Ld instructions=%Ld" ms.System.cycles
                    ms.System.instructions
                in
                match runs with
                | [] -> ()
                | (e0, m0) :: rest ->
                  List.iter
                    (fun (e, m) ->
                      check scheme
                        (Machine.engine_name e0 ^ "-vs-" ^ Machine.engine_name e)
                        ~expected:(counters m0) ~actual:(counters m))
                    rest
              end)
            oracle;
          match !divergence with Some d -> Divergent d | None -> Agree oracle
        with Toolchain.Compile_error e -> Skipped ("compile: " ^ e)))
