(** Sized, seeded random MiniC program generator, biased toward the
    protection-relevant shapes the ROLoad schemes disagree about:
    indirect calls through typed function-pointer variables, tables and
    memory slots; virtual dispatch through class hierarchies; wrong-type
    function-pointer writes; vtable-pointer injection and reuse; and
    stores into read-only data.

    Programs are assembled from named chunks so the shrinker can delete
    them one at a time and re-render.  Every chunk is self-contained (its
    locals are suffixed with the chunk id); cross-chunk references only
    target the fixed prelude, so most deletions keep the program
    compiling.

    The generator's contract with the oracle: generated programs never
    print or branch on machine addresses (function-pointer equality is
    the one allowed pointer observation), never stage fewer arguments
    than a callee consumes, and only forge vtable pointers from vtable
    bases or writable arrays — so {!Ir_eval} never has to guess about
    layout. *)

type chunk = { ck_name : string; ck_text : string }

type prog = {
  pr_seed : int64;
  pr_top : chunk list;  (** top-level declarations, in order *)
  pr_main : chunk list;  (** statement groups forming [main]'s body *)
}

val generate : seed:int64 -> size:int -> prog
(** [size] scales the number of optional chunks (roughly [3 + size]). *)

val to_source : prog -> string

val optional_chunks : prog -> string list
(** Names the shrinker may try to delete, in program order. *)

val drop_chunk : prog -> string -> prog
