(** The reference oracle: a big-step interpreter for the *unhardened*
    typed IR.  It executes programs directly — no hardening pass, no code
    generation, no machine — in its own synthetic address space, and
    predicts the observable behavior (exit status or fault class, plus the
    exact console output) under a given hardening scheme.

    Scheme semantics are evaluated structurally at each indirect control
    transfer, from the same policy definitions the passes use (signature
    identity for ICall, hierarchy roots for VCall, the exact CFI label
    hashes, read-only-region membership for VTint), so oracle and compiled
    pipeline can only agree when the whole MiniC → IR → passes → codegen →
    asm → link → machine chain preserves the intended semantics.

    The oracle deliberately refuses programs whose behavior depends on
    machine-level layout it does not model (reads of unmapped synthetic
    memory, calls through non-function values, arity-extending type
    confusion): it raises {!Unsupported}.  The generator is biased to
    never produce such programs. *)

exception Unsupported of string
(** The program's behavior is not layout-independent (or exceeded the
    interpretation fuel); no prediction is made. *)

type behavior = {
  stop : Roload_security.Trapclass.stop;
  output : string;
}

val behavior_to_string : behavior -> string
val behavior_equal : behavior -> behavior -> bool

val run :
  ?fuel:int ->
  scheme:Roload_passes.Pass.scheme ->
  Roload_ir.Ir.modul ->
  behavior
(** [run ~scheme m] executes [m] (as produced by {!Roload_front.Lower},
    before any hardening pass) from [main] and predicts the behavior the
    full ROLoad system (modified processor + kernel) exhibits under
    [scheme].  [fuel] bounds interpreted IR instructions (default 5M);
    exhausting it raises {!Unsupported}. *)
