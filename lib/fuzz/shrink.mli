(** Greedy chunk-deletion shrinker: reduce a failing generated program to
    a minimal reproducer by repeatedly deleting optional chunks while the
    failure persists.  Deletions that break compilation or lose the
    divergence are rolled back; the loop runs to a fixed point. *)

val shrink :
  still_failing:(Gen.prog -> bool) ->
  Gen.prog ->
  Gen.prog
(** [still_failing] must return [true] when the candidate still exhibits
    the original failure (it is responsible for catching compile errors
    and returning [false] for them). *)

val reproducer_source : Gen.prog -> string
(** The shrunk program plus a replay header ([seed], chunk names) as a
    MiniC comment block, ready to be written to [corpus/]. *)
