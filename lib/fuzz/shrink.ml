(* Chunk-deletion shrinking.

   The generator builds programs from named, mostly-independent chunks,
   so shrinking is simple and effective: try to delete every optional
   chunk (latest first — later chunks are more likely to be dead weight
   below the failure point), keep deletions that preserve the failure,
   and repeat until a full sweep deletes nothing.  Orphaned top-level
   declarations (a dispatch table whose call-site chunk was deleted) go
   together with their chunk because top and main parts share one chunk
   name. *)

let one_sweep ~still_failing prog =
  List.fold_left
    (fun (prog, changed) name ->
      let candidate = Gen.drop_chunk prog name in
      if still_failing candidate then (candidate, true) else (prog, changed))
    (prog, false)
    (List.rev (Gen.optional_chunks prog))

let shrink ~still_failing prog =
  let rec fixpoint prog budget =
    if budget = 0 then prog
    else
      let prog', changed = one_sweep ~still_failing prog in
      if changed then fixpoint prog' (budget - 1) else prog'
  in
  (* each sweep deletes at least one chunk, so the chunk count bounds the
     number of useful sweeps *)
  fixpoint prog (List.length (Gen.optional_chunks prog) + 1)

let reproducer_source (p : Gen.prog) =
  let chunks = String.concat " " (Gen.optional_chunks p) in
  Printf.sprintf "// roload-fuzz reproducer: seed=%Ld chunks=[%s]\n%s" p.Gen.pr_seed
    chunks (Gen.to_source p)
