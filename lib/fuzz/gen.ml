(* Random MiniC program generator for the differential fuzzer.

   Programs are assembled from chunks: a fixed prelude (typedefs, sink
   and callback functions, class hierarchies, shared globals) plus a
   random number of optional shapes.  Shapes are biased toward the
   transfers the hardening schemes disagree about — that's where a
   miscompiled key, a dropped ld.ro or a wrong label shows up as a
   divergence against the oracle.

   Determinism contract with the oracle (see ir_eval.ml): no machine
   address is ever printed or branched on (function-pointer equality is
   the only pointer observation, and it is scheme-stable); every callee
   reachable by a confusion consumes no more arguments than the call
   site stages, and sink functions ignore their parameters entirely;
   frame arrays are fully initialized before any dynamic read (stack
   reuse makes uninitialized slots nondeterministic on the machine);
   loop counters are never assigned inside their own loop body. *)

module Prng = Roload_util.Prng

type chunk = { ck_name : string; ck_text : string }

type prog = {
  pr_seed : int64;
  pr_top : chunk list;
  pr_main : chunk list;
}

(* ---------- expressions and statement soup ---------- *)

let lit n = if n < 0 then Printf.sprintf "(0 - %d)" (-n) else string_of_int n

let arith_ops = [| "+"; "-"; "*"; "/"; "%"; "&"; "|"; "^"; "<<"; ">>" |]
let cmp_ops = [| "<"; "<="; ">"; ">="; "=="; "!=" |]

let rec gen_expr rng depth (atoms : string array) =
  if depth <= 0 || Prng.next_int rng 3 = 0 then
    if Array.length atoms > 0 && Prng.next_bool rng then Prng.choose rng atoms
    else lit (Prng.next_in_range rng ~lo:(-99) ~hi:99)
  else
    let ops = if Prng.next_int rng 4 = 0 then cmp_ops else arith_ops in
    Printf.sprintf "(%s %s %s)"
      (gen_expr rng (depth - 1) atoms)
      (Prng.choose rng ops)
      (gen_expr rng (depth - 1) atoms)

(* a few statements over integer locals [vars] (all assignable) *)
let gen_stmts rng ~indent ~prefix vars buf =
  let atoms = Array.of_list vars in
  let pad = String.make indent ' ' in
  let n = Prng.next_in_range rng ~lo:2 ~hi:5 in
  let loop_count = ref 0 in
  for j = 0 to n - 1 do
    match Prng.next_int rng 5 with
    | 0 -> Buffer.add_string buf (Printf.sprintf "%sprint_int(%s);\n" pad (gen_expr rng 2 atoms))
    | 1 ->
      Buffer.add_string buf
        (Printf.sprintf "%sif (%s %s %s) { %s = %s; } else { %s = %s; }\n" pad
           (gen_expr rng 1 atoms) (Prng.choose rng cmp_ops) (gen_expr rng 1 atoms)
           (Prng.choose rng atoms) (gen_expr rng 2 atoms)
           (Prng.choose rng atoms) (gen_expr rng 2 atoms))
    | 2 when !loop_count = 0 ->
      incr loop_count;
      let i = Printf.sprintf "i%s_%d" prefix j in
      let body_var = Prng.choose rng atoms in
      Buffer.add_string buf
        (Printf.sprintf "%sint %s = 0;\n%swhile (%s < %d) { %s = %s + %s; %s = %s + 1; }\n"
           pad i pad i
           (Prng.next_in_range rng ~lo:1 ~hi:12)
           body_var
           (gen_expr rng 1 atoms) i i i)
    | _ ->
      Buffer.add_string buf
        (Printf.sprintf "%s%s = %s;\n" pad (Prng.choose rng atoms) (gen_expr rng 2 atoms))
  done

(* ---------- the fixed prelude ---------- *)

(* Sinks ignore their parameters and print a fixed marker: a hijacked
   transfer that reaches one behaves identically no matter what garbage
   (including addresses) was staged in the argument registers. *)
(* Each declaration group is its own chunk so the shrinker can delete the
   ones a reproducer doesn't reference; only the typedefs and the shared
   globals are required (nearly every shape's expressions read g0/g1). *)
let prelude rng =
  let e atoms = gen_expr rng 2 (Array.of_list atoms) in
  [
    {
      ck_name = "prelude";
      ck_text =
        String.concat ""
          [
            "typedef int (*cb0_t)(int);\n";
            "typedef int (*cb1_t)(int, int);\n";
            (* parse_ginit accepts only plain (possibly negated) literals *)
            Printf.sprintf "int g0 = %d;\n" (Prng.next_in_range rng ~lo:(-99) ~hi:99);
            Printf.sprintf "int g1 = %d;\n" (Prng.next_in_range rng ~lo:(-99) ~hi:99);
          ];
    };
    {
      ck_name = "p-sinks";
      ck_text =
        String.concat ""
          [
            "int sink0(int x) { print_str(\"[s0]\"); return 70; }\n";
            "int sink2() { print_str(\"[s2]\"); return 74; }\n";
            "int twin0(int x) { print_str(\"[t0]\"); return 72; }\n";
          ];
    };
    {
      ck_name = "p-cbs";
      ck_text =
        String.concat ""
          [
            Printf.sprintf "int cbA(int x) { return %s; }\n" (e [ "x" ]);
            Printf.sprintf "int cbB(int a, int b) { return %s; }\n" (e [ "a"; "b" ]);
          ];
    };
    {
      ck_name = "p-classes";
      ck_text =
        String.concat ""
          [
            Printf.sprintf
              "class A { int pad; virtual int m(int x) { return %s; } };\n"
              (e [ "x" ]);
            Printf.sprintf "class B : A { virtual int m(int x) { return %s; } };\n"
              (e [ "x"; "pad" ]);
            "class D { virtual int m(int x) { print_str(\"[d]\"); return 73; } };\n";
          ];
    };
    { ck_name = "p-slots"; ck_text = "cb0_t gslot0;\ncb1_t gslot1;\n" };
  ]

(* ---------- optional shapes ---------- *)

type emit = { top : string option; main : string }

let shape_soup rng k =
  let a = Printf.sprintf "a%d" k and b = Printf.sprintf "b%d" k in
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "  int %s = %s;\n  int %s = %s;\n" a
       (lit (Prng.next_in_range rng ~lo:(-99) ~hi:99))
       b
       (lit (Prng.next_in_range rng ~lo:(-99) ~hi:99)));
  gen_stmts rng ~indent:2 ~prefix:(string_of_int k) [ a; b; "g0"; "g1" ] buf;
  Buffer.add_string buf (Printf.sprintf "  print_int(%s ^ %s);\n" a b);
  { top = None; main = Buffer.contents buf }

let shape_benign_icall rng k =
  let c = Printf.sprintf "c%d" k in
  let arg () = gen_expr rng 1 [| "g0"; "g1" |] in
  let main =
    match Prng.next_int rng 3 with
    | 0 ->
      Printf.sprintf "  cb0_t %s = cbA;\n  print_int(%s(%s));\n" c c (arg ())
    | 1 ->
      Printf.sprintf
        "  gslot1 = cbB;\n  cb1_t %s = gslot1;\n  print_int(%s(%s, %s));\n" c c
        (arg ()) (arg ())
    | _ ->
      (* the same-signature twin: a genuine pointee-reuse residual, it
         executes (and marks) under every scheme *)
      Printf.sprintf "  cb0_t %s = twin0;\n  print_int(%s(%s));\n" c c (arg ())
  in
  { top = None; main }

let shape_table_icall rng k =
  let tab = Printf.sprintf "tab%d" k and i = Printf.sprintf "ti%d" k in
  (* sink2's signature differs: whether this chunk traps under ICall/CFI
     depends on which entry the runtime index selects *)
  let entries =
    Array.init 4 (fun _ -> Prng.choose rng [| "cbA"; "sink0"; "twin0"; "sink2" |])
  in
  let top =
    Printf.sprintf "cb0_t %s[4] = { %s, %s, %s, %s };\n" tab entries.(0)
      entries.(1) entries.(2) entries.(3)
  in
  let main =
    Printf.sprintf "  int %s = %s;\n  print_int(%s[%s & 3](%s));\n" i
      (gen_expr rng 2 [| "g0"; "g1" |])
      tab i
      (gen_expr rng 1 [| "g0"; "g1" |])
  in
  { top = Some top; main }

let shape_wrongtype_icall rng k =
  let w = Printf.sprintf "w%d" k in
  let arg () = gen_expr rng 1 [| "g0"; "g1" |] in
  let main =
    match Prng.next_int rng 3 with
    | 0 ->
      Printf.sprintf "  cb1_t %s = (cb1_t)sink0;\n  print_int(%s(%s, %s));\n" w w
        (arg ()) (arg ())
    | 1 ->
      Printf.sprintf
        "  gslot1 = (cb1_t)twin0;\n  cb1_t %s = gslot1;\n  print_int(%s(%s, %s));\n"
        w w (arg ()) (arg ())
    | _ ->
      Printf.sprintf "  cb0_t %s = (cb0_t)sink2;\n  print_int(%s(%s));\n" w w
        (arg ())
  in
  { top = None; main }

let shape_mem_fptr rng k =
  let mem = Printf.sprintf "mem%d" k and m = Printf.sprintf "m%d" k in
  let target, site_ty =
    (* the round-trip through integer memory keeps the function's own
       GFPT address; conformance hinges on the call-site key *)
    match Prng.next_int rng 3 with
    | 0 -> ("cbA", "cb0_t")
    | 1 -> ("twin0", "cb0_t")
    | _ -> ("sink2", "cb0_t")
  in
  let main =
    Printf.sprintf
      "  int %s[2];\n  %s[0] = (int)%s;\n  %s[1] = 0;\n  %s %s = (%s)%s[0];\n  print_int(%s(%s));\n"
      mem mem target mem site_ty m site_ty mem m
      (gen_expr rng 1 [| "g0"; "g1" |])
  in
  { top = None; main }

let shape_benign_vcall rng k =
  let o = Printf.sprintf "o%d" k in
  let arg () = gen_expr rng 1 [| "g0"; "g1" |] in
  let main =
    match Prng.next_int rng 4 with
    | 0 -> Printf.sprintf "  A *%s = new A;\n  print_int(%s->m(%s));\n" o o (arg ())
    | 1 ->
      Printf.sprintf
        "  A *%s = (A *)(new B);\n  %s->pad = %s;\n  print_int(%s->m(%s));\n" o o
        (lit (Prng.next_in_range rng ~lo:(-9) ~hi:9))
        o (arg ())
    | 2 -> Printf.sprintf "  B *%s = new B;\n  print_int(%s->m(%s));\n" o o (arg ())
    | _ -> Printf.sprintf "  D *%s = new D;\n  print_int(%s->m(%s));\n" o o (arg ())
  in
  { top = None; main }

let shape_vptr_inject rng k =
  let fake = Printf.sprintf "fake%d" k and v = Printf.sprintf "v%d" k in
  let global_fake = Prng.next_bool rng in
  let top = if global_fake then Some (Printf.sprintf "int %s[2];\n" fake) else None in
  let buf = Buffer.create 128 in
  if not global_fake then Buffer.add_string buf (Printf.sprintf "  int %s[2];\n" fake);
  Buffer.add_string buf
    (Printf.sprintf
       "  %s[0] = (int)sink0;\n  %s[1] = 0;\n  A *%s = new A;\n  *((int *)%s) = (int)%s;\n  print_int(%s->m(%s));\n"
       fake fake v v fake v
       (gen_expr rng 1 [| "g0"; "g1" |]));
  { top; main = Buffer.contents buf }

let shape_cross_reuse rng k =
  let x = Printf.sprintf "x%d" k and d = Printf.sprintf "d%d" k in
  let main =
    Printf.sprintf
      "  A *%s = new A;\n  D *%s = new D;\n  *((int *)%s) = *((int *)%s);\n  print_int(%s->m(%s));\n"
      x d x d x
      (gen_expr rng 1 [| "g0"; "g1" |])
  in
  { top = None; main }

let shape_inhier_swap rng k =
  let p = Printf.sprintf "p%d" k and q = Printf.sprintf "q%d" k in
  let main =
    Printf.sprintf
      "  A *%s = new A;\n  %s->pad = %s;\n  A *%s = (A *)(new B);\n  *((int *)%s) = *((int *)%s);\n  print_int(%s->m(%s));\n"
      p p
      (lit (Prng.next_in_range rng ~lo:(-9) ~hi:9))
      q p q p
      (gen_expr rng 1 [| "g0"; "g1" |])
  in
  { top = None; main }

let shape_chars rng k =
  let buf = Printf.sprintf "buf%d" k in
  let b = Buffer.create 128 in
  Buffer.add_string b (Printf.sprintf "  char %s[4];\n" buf);
  for i = 0 to 3 do
    Buffer.add_string b
      (Printf.sprintf "  %s[%d] = %d;\n" buf i (Prng.next_int rng 256))
  done;
  Buffer.add_string b
    (Printf.sprintf "  print_int(%s[%s & 3]);\n" buf (gen_expr rng 1 [| "g0" |]));
  Buffer.add_string b
    (Printf.sprintf "  print_char((%s[0] & 63) + 32);\n" buf);
  { top = None; main = Buffer.contents b }

let shape_helper rng k =
  let h = Printf.sprintf "h%d" k in
  if Prng.next_bool rng then begin
    let body = Buffer.create 128 in
    gen_stmts rng ~indent:2 ~prefix:(Printf.sprintf "h%d" k) [ "a"; "b" ] body;
    let top =
      Printf.sprintf "int %s(int a, int b) {\n%s  return %s;\n}\n" h
        (Buffer.contents body)
        (gen_expr rng 2 [| "a"; "b" |])
    in
    let main =
      Printf.sprintf "  print_int(%s(%s, %s));\n" h
        (gen_expr rng 1 [| "g0"; "g1" |])
        (gen_expr rng 1 [| "g0"; "g1" |])
    in
    { top = Some top; main }
  end
  else begin
    let top =
      Printf.sprintf
        "int %s(int n) {\n  if (n <= 0) { return 1; }\n  return %s + %s(n - 1);\n}\n"
        h (gen_expr rng 1 [| "n" |]) h
    in
    let main =
      Printf.sprintf "  print_int(%s(%d));\n" h (Prng.next_in_range rng ~lo:1 ~hi:24)
    in
    { top = Some top; main }
  end

let shape_fptr_eq rng k =
  let c = Printf.sprintf "e%d" k in
  let t1 = Prng.choose rng [| "cbA"; "twin0"; "sink0" |] in
  let t2 = Prng.choose rng [| "cbA"; "twin0"; "sink0" |] in
  let main =
    Printf.sprintf "  cb0_t %s = %s;\n  print_int(%s == %s);\n  print_int(%s != %s);\n"
      c t1 c t2 c t1
  in
  { top = None; main }

(* a deterministic plain fault, identical under every scheme: a store
   into read-only data, or a null-page access (the machine's null page is
   unmapped by construction, link base 0x10000) *)
let shape_ro_store rng k =
  let s = Printf.sprintf "ro%d" k in
  let main =
    match Prng.next_int rng 3 with
    | 0 -> Printf.sprintf "  char *%s = \"rodata\";\n  %s[1] = 65;\n" s s
    | 1 -> Printf.sprintf "  int *%s = (int *)0;\n  %s[0] = 1;\n" s s
    | _ -> Printf.sprintf "  int *%s = (int *)0;\n  print_int(%s[0]);\n" s s
  in
  { top = None; main }

let shapes =
  [
    (3, ("soup", shape_soup));
    (2, ("benign-icall", shape_benign_icall));
    (2, ("table-icall", shape_table_icall));
    (2, ("wrongtype-icall", shape_wrongtype_icall));
    (1, ("mem-fptr", shape_mem_fptr));
    (2, ("benign-vcall", shape_benign_vcall));
    (2, ("vptr-inject", shape_vptr_inject));
    (2, ("cross-reuse", shape_cross_reuse));
    (1, ("inhier-swap", shape_inhier_swap));
    (1, ("chars", shape_chars));
    (1, ("helper", shape_helper));
    (1, ("fptr-eq", shape_fptr_eq));
    (1, ("ro-store", shape_ro_store));
  ]

let pick_shape rng =
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 shapes in
  let r = ref (Prng.next_int rng total) in
  let rec go = function
    | [] -> assert false
    | (w, s) :: rest -> if !r < w then s else (r := !r - w; go rest)
  in
  go shapes

(* ---------- assembly ---------- *)

let generate ~seed ~size =
  let rng = Prng.create seed in
  let main = ref [] in
  let top = ref (List.rev (prelude rng)) in
  let n = max 1 (3 + size) in
  for k = 1 to n do
    let shape_name, emitter = pick_shape rng in
    let name = Printf.sprintf "c%d-%s" k shape_name in
    let { top = t; main = m } = emitter rng k in
    (match t with
    | Some text -> top := { ck_name = name; ck_text = text } :: !top
    | None -> ());
    main := { ck_name = name; ck_text = m } :: !main
  done;
  main :=
    { ck_name = "ret"; ck_text = Printf.sprintf "  return %d;\n" (Prng.next_int rng 100) }
    :: !main;
  { pr_seed = seed; pr_top = List.rev !top; pr_main = List.rev !main }

let to_source p =
  let b = Buffer.create 1024 in
  List.iter (fun c -> Buffer.add_string b c.ck_text; Buffer.add_char b '\n') p.pr_top;
  Buffer.add_string b "int main() {\n";
  List.iter (fun c -> Buffer.add_string b c.ck_text) p.pr_main;
  Buffer.add_string b "}\n";
  Buffer.contents b

let optional_chunks p =
  let names = List.map (fun c -> c.ck_name) (p.pr_top @ p.pr_main) in
  let seen = Hashtbl.create 16 in
  List.filter
    (fun n ->
      if n = "prelude" || n = "ret" || Hashtbl.mem seen n then false
      else begin
        Hashtbl.add seen n ();
        true
      end)
    names

let drop_chunk p name =
  {
    p with
    pr_top = List.filter (fun c -> c.ck_name <> name) p.pr_top;
    pr_main = List.filter (fun c -> c.ck_name <> name) p.pr_main;
  }
