(* Deterministic splitmix64 PRNG.  All randomized workloads and the qcheck
   seeds derive from this so every experiment is bit-for-bit reproducible. *)

type t = { mutable state : int64 }

let create seed = { state = seed }

let golden = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Uniform int in [0, bound). *)
let next_int t bound =
  if bound <= 0 then invalid_arg "Prng.next_int";
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod bound

let next_bool t = Int64.logand (next_int64 t) 1L = 1L

let next_in_range t ~lo ~hi =
  if hi < lo then invalid_arg "Prng.next_in_range";
  lo + next_int t (hi - lo + 1)

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = next_int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Prng.choose";
  arr.(next_int t (Array.length arr))

let split t = create (next_int64 t)

(* State capture for machine snapshots: a copy continues the parent's
   stream without perturbing it — forks drawing from copies see exactly
   the stream the parent would have (the prefix-stability contract). *)
let copy t = { state = t.state }
let state t = t.state
let restore t s = t.state <- s
