(** Deterministic splitmix64 PRNG used by workload generators so that every
    experiment run is bit-for-bit reproducible. *)

type t

val create : int64 -> t
(** [create seed] is a fresh generator. Equal seeds give equal streams. *)

val next_int64 : t -> int64
val next_int : t -> int -> int
(** [next_int t bound] is uniform in [\[0, bound)]. [bound] must be > 0. *)

val next_bool : t -> bool
val next_in_range : t -> lo:int -> hi:int -> int
(** Uniform in the inclusive range [\[lo, hi\]]. *)

val shuffle : t -> 'a array -> unit
val choose : t -> 'a array -> 'a
val split : t -> t
(** Derive an independent generator. *)

val copy : t -> t
(** A generator that continues the same stream from the current state
    without advancing (or ever perturbing) the original — snapshot
    support for the prefix-stability contract. *)

val state : t -> int64
val restore : t -> int64 -> unit
