(* Hand-rolled JSON encoding helpers (the container has no JSON library).
   Shared by the bench trajectory log, the metrics snapshots and the
   Chrome-trace exporter so every writer escapes strings the same way and
   the CI scanners can rely on one number format. *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let str s = "\"" ^ escape s ^ "\""
let int n = string_of_int n
let int64 n = Int64.to_string n
let float3 f = Printf.sprintf "%.3f" f
let bool b = if b then "true" else "false"

(* [field b ~last "name" value] appends ["name": value] plus the separator;
   values are pre-rendered JSON fragments (use {!str}/{!int}/...). *)
let field b ?(last = false) name value =
  Buffer.add_string b "\"";
  Buffer.add_string b (escape name);
  Buffer.add_string b "\": ";
  Buffer.add_string b value;
  if not last then Buffer.add_string b ", "

let obj fields = "{ " ^ String.concat ", " (List.map (fun (k, v) -> "\"" ^ escape k ^ "\": " ^ v) fields) ^ " }"

let arr items = "[" ^ String.concat ", " items ^ "]"

(* ---------- minimal scanners (CI gates) ----------

   The emitted documents are flat enough that key-directed scans suffice;
   no general parser needed. *)

(* every number following ["key":], in document order *)
let scan_int64_values ~key s =
  let key = "\"" ^ key ^ "\":" in
  let klen = String.length key and len = String.length s in
  let out = ref [] in
  let i = ref 0 in
  while !i + klen <= len do
    if String.sub s !i klen = key then begin
      let k = ref (!i + klen) in
      while !k < len && s.[!k] = ' ' do
        incr k
      done;
      let e = ref !k in
      while !e < len && (match s.[!e] with '0' .. '9' | '-' -> true | _ -> false) do
        incr e
      done;
      (match Int64.of_string_opt (String.sub s !k (!e - !k)) with
      | Some v -> out := v :: !out
      | None -> ());
      i := !e
    end
    else incr i
  done;
  List.rev !out
