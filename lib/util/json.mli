(** Hand-rolled JSON encoding helpers shared by every JSON writer in the
    repo (bench log, metrics snapshots, Chrome-trace export) — the
    container has no JSON library. *)

val escape : string -> string
(** Escape a string body for embedding between double quotes. *)

val str : string -> string
(** A quoted, escaped JSON string literal. *)

val int : int -> string
val int64 : int64 -> string
val float3 : float -> string
(** Fixed three-decimal rendering — the one number format the CI scanners
    rely on. *)

val bool : bool -> string

val field : Buffer.t -> ?last:bool -> string -> string -> unit
(** [field b name value] appends ["name": value] and, unless [last], a
    [", "] separator.  [value] is a pre-rendered fragment. *)

val obj : (string * string) list -> string
(** An inline object from pre-rendered value fragments. *)

val arr : string list -> string

val scan_int64_values : key:string -> string -> int64 list
(** Every integer following ["key":] in the document, in order (used by
    the CI cycle-divergence gate). *)
