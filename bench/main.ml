(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (printed as ASCII tables), then runs one Bechamel
   micro-benchmark per experiment measuring the cost of the machinery
   that produces it.

   Scale: set ROLOAD_SCALE (default 1 = quick; 3 = the "reference"
   setting used in EXPERIMENTS.md).  All simulations are deterministic,
   so each experiment is a single exact run. *)

let scale =
  match Sys.getenv_opt "ROLOAD_SCALE" with
  | Some s -> (try max 1 (int_of_string s) with Failure _ -> 1)
  | None -> 1

(* --json PATH: record the per-experiment bench trajectory (wall-clock,
   simulated instructions, simulated MIPS) alongside the printed tables. *)
let json_path =
  let rec scan = function
    | "--json" :: path :: _ -> Some path
    | _ :: rest -> scan rest
    | [] -> None
  in
  scan (Array.to_list Sys.argv)

(* --engine NAME: run every simulation on the named execution engine
   (default: the machine default, traced; ROLOAD_ENGINE still wins). *)
let engine_label =
  let module Machine = Roload_machine.Machine in
  let rec scan = function
    | "--engine" :: name :: _ -> Some name
    | _ :: rest -> scan rest
    | [] -> None
  in
  (match scan (Array.to_list Sys.argv) with
  | None -> ()
  | Some name -> (
    match Machine.engine_of_string name with
    | Ok e -> Machine.set_default_engine e
    | Error msg ->
      prerr_endline msg;
      exit 2));
  try Machine.engine_name (Machine.effective_engine ())
  with Failure msg ->
    prerr_endline msg;
    exit 2

let entries : Core.Bench_log.entry list ref = ref []

let section title = Printf.printf "\n################ %s ################\n%!" title

let timed name f =
  let t0 = Unix.gettimeofday () in
  let i0 = Core.System.total_instructions_simulated () in
  let r = f () in
  let wall_s = Unix.gettimeofday () -. t0 in
  let instructions = Core.System.total_instructions_simulated () - i0 in
  entries := Core.Bench_log.entry ~name ~engine:engine_label ~wall_s ~instructions :: !entries;
  Printf.printf "[%s: %.1fs]\n%!" name wall_s;
  r

(* ---------- the paper's tables and figures ---------- *)

let run_experiments () =
  section "Table I — modification footprint";
  Roload_util.Table.print (Core.Experiments.table1 ());

  section "Table II — prototype configuration";
  Roload_util.Table.print (Core.Experiments.table2 ());

  section "Table III — hardware resource cost";
  let t3 = timed "table3" (fun () -> Core.Experiments.table3 ()) in
  Roload_util.Table.print t3.Core.Experiments.table;

  section "Section V-B — system-level overhead (3 systems, unmodified binaries)";
  let vb = timed "section5b" (fun () -> Core.Experiments.section5b ~scale ()) in
  Roload_util.Table.print vb.Core.Experiments.table;

  section "Figure 3 — VCall vs VTint (C++ benchmarks)";
  let f3 = timed "figure3" (fun () -> Core.Experiments.figure3 ~scale ()) in
  Roload_util.Table.print f3.Core.Experiments.runtime_table;
  Roload_util.Table.print f3.Core.Experiments.memory_table;

  section "Figures 4 & 5 — ICall vs CFI (all benchmarks)";
  let f45 = timed "figure45" (fun () -> Core.Experiments.figure45 ~scale ()) in
  Roload_util.Table.print f45.Core.Experiments.runtime_table;
  Roload_util.Table.print f45.Core.Experiments.memory_table;
  Roload_util.Table.print f45.Core.Experiments.memory_pages_table;

  section "Section V-C2 — security matrix";
  let sec = timed "security" (fun () -> Core.Experiments.security ()) in
  Roload_util.Table.print sec.Core.Experiments.table;
  Roload_util.Table.print (Core.Experiments.related_work_table ());

  section "Ablations";
  Roload_util.Table.print
    (timed "ablation_compressed" (fun () -> Core.Experiments.ablation_compressed ()));
  Roload_util.Table.print (timed "ablation_keys" (fun () -> Core.Experiments.ablation_keys ()));
  Roload_util.Table.print
    (timed "ablation_separate_code" (fun () -> Core.Experiments.ablation_separate_code ()));
  Roload_util.Table.print
    (timed "ablation_retcall" (fun () -> Core.Experiments.ablation_retcall ()));
  Roload_util.Table.print (timed "ablation_tlb" (fun () -> Core.Experiments.ablation_tlb ()))

(* ---------- Bechamel micro-benchmarks ---------- *)

let quick_source = {|
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int main() { print_int(fib(12)); return 0; }
|}

let victim_exe scheme =
  Core.Toolchain.compile_exe
    ~options:{ Core.Toolchain.default_options with scheme }
    ~name:"victim" Roload_security.Victim.source

let bechamel_tests () =
  let open Bechamel in
  let icall_victim = victim_exe Roload_passes.Pass.Icall in
  let quick_exe = Core.Toolchain.compile_exe ~name:"fib" quick_source in
  [
    (* Table III: cost of one full synthesis run (elaborate + map + STA) *)
    Test.make ~name:"table3: tlb synthesis"
      (Staged.stage (fun () -> ignore (Roload_hw.Synth.run ())));
    (* §V-B / Figs 3–5 building block: compile + harden a program *)
    Test.make ~name:"figs: compile+harden (icall)"
      (Staged.stage (fun () ->
           ignore
             (Core.Toolchain.compile_exe
                ~options:{ Core.Toolchain.default_options with
                           scheme = Roload_passes.Pass.Icall }
                ~name:"fib" quick_source)));
    (* §V-B building block: simulate a small program end to end *)
    Test.make ~name:"figs: simulate fib(12)"
      (Staged.stage (fun () ->
           ignore (Core.System.run ~variant:Core.System.Processor_kernel_modified quick_exe)));
    (* §V-C2 building block: one attack run *)
    Test.make ~name:"security: one attack run"
      (Staged.stage (fun () ->
           ignore
             (Roload_security.Eval.run ~exe:icall_victim
                Roload_security.Attack.Fptr_type_confusion)));
  ]

let run_bechamel () =
  let open Bechamel in
  let open Toolkit in
  section "Bechamel micro-benchmarks (machinery cost per experiment)";
  let instances = [ Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:(Some 10) () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      Hashtbl.iter
        (fun name result ->
          let analysis =
            Analyze.one
              (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
              Instance.monotonic_clock result
          in
          match Analyze.OLS.estimates analysis with
          | Some [ est ] -> Printf.printf "  %-36s %12.0f ns/run\n%!" name est
          | Some _ | None -> Printf.printf "  %-36s (no estimate)\n%!" name)
        results)
    (bechamel_tests ())

let () =
  Printf.printf "ROLoad reproduction bench harness (scale %d, engine %s)\n" scale
    engine_label;
  run_experiments ();
  (match json_path with
  | Some path ->
    Core.Bench_log.write ~path ~scale ~jobs:(Core.Parallel.default_jobs ())
      (List.rev !entries);
    Printf.printf "\nbench trajectory written to %s\n%!" path
  | None -> ());
  run_bechamel ();
  print_endline "\ndone."
