(* Snapshot correctness: the differential-state test harness for the
   copy-on-write machine snapshots.

   The contract under test, on every scheme and every engine:

   - restore-exactness: run N instructions, snapshot, run to completion,
     restore, run to completion again — the second run is byte-identical
     (status, output, instret, cycles, and the {e full} metrics
     snapshot, caches/TLBs/trace counters included);

   - fork-isolation: forks of one snapshot are fully independent —
     running the parent or a sibling to completion never perturbs a
     fork, which still reproduces the captured run exactly;

   - diff-localization: a single planted bit flip in one fork is
     reported by the page-level comparator as exactly the tampered
     page/offset, while untouched twin forks diff empty. *)

module Machine = Roload_machine.Machine
module Kernel = Roload_kernel.Kernel
module Process = Roload_kernel.Process
module Snapshot = Roload_kernel.Snapshot
module Phys_mem = Roload_mem.Phys_mem
module Pass = Roload_passes.Pass
module Metrics = Roload_obs.Metrics
module System = Core.System

let all_engines =
  [ Machine.Single_step; Machine.Block_cached; Machine.Traced ]

let compile ~scheme src =
  Core.Toolchain.compile_exe
    ~options:{ Core.Toolchain.default_options with scheme }
    ~name:"snap" src

let boot ?engine exe =
  let machine =
    Machine.create ?engine (System.machine_config System.Processor_kernel_modified)
  in
  let kernel = Kernel.create ~machine ~config:(System.kernel_config System.Processor_kernel_modified) in
  let process = Kernel.load kernel exe in
  Kernel.schedule kernel process;
  (machine, kernel, process)

let budget = 10_000_000L

let run_to limit kernel process =
  Kernel.run ~limit:{ Kernel.max_instructions = limit } kernel process

let metrics ~machine ~kernel ~process =
  System.snapshot_metrics ~machine ~kernel ~mmu:(Process.mmu process)

let outcome_str (o : Kernel.run_outcome) =
  Printf.sprintf "%s instret=%Ld cycles=%Ld out=%S"
    (match o.Kernel.status with
    | Process.Exited n -> Printf.sprintf "exit %d" n
    | Process.Killed sg -> Roload_kernel.Signal.to_string sg
    | Process.Running -> "running")
    o.Kernel.instructions o.Kernel.cycles o.Kernel.output

(* ---------- restore-exactness + fork-isolation property ---------- *)

let gen_case rs =
  let open QCheck.Gen in
  let src = Test_engine.gen_source rs in
  let scheme = oneofl Pass.all_schemes rs in
  let engine = oneofl all_engines rs in
  let pause = Int64.of_int (1 + int_bound 4000 rs) in
  (src, scheme, engine, pause)

let arb_case =
  QCheck.make gen_case ~print:(fun (src, scheme, engine, pause) ->
      Printf.sprintf "// scheme %s engine %s pause %Ld\n%s" (Pass.scheme_name scheme)
        (Machine.engine_name engine) pause src)

let check_restore_exact ~ctx (src, scheme, engine, pause) =
  let exe = compile ~scheme src in
  let machine, kernel, process = boot ~engine exe in
  ignore (run_to pause kernel process);
  let snap = Snapshot.capture ~machine ~kernel ~process in
  let final1 = run_to budget kernel process in
  let met1 = metrics ~machine ~kernel ~process in
  Snapshot.restore snap ~machine ~kernel ~process;
  let final2 = run_to budget kernel process in
  let met2 = metrics ~machine ~kernel ~process in
  Alcotest.(check string)
    (ctx ^ ": replay after restore is identical")
    (outcome_str final1) (outcome_str final2);
  Alcotest.(check string)
    (ctx ^ ": full metrics identical after restore")
    (Metrics.to_json met1) (Metrics.to_json met2);
  (final1, met1, snap)

let check_fork_exact ~ctx snap (final1 : Kernel.run_outcome) (met1 : Metrics.t) =
  let fm, fk, fp = Snapshot.fork snap in
  let ffinal = run_to budget fk fp in
  let fmet = metrics ~machine:fm ~kernel:fk ~process:fp in
  Alcotest.(check string)
    (ctx ^ ": fork replays the captured run")
    (outcome_str final1) (outcome_str ffinal);
  (* trace counters may legitimately differ (forks drop parent-bound
     compiled traces and re-earn them), so forks are compared on
     architectural equality *)
  Alcotest.(check bool)
    (ctx ^ ": fork metrics architecturally identical")
    true
    (Metrics.core_equal met1 fmet)

let check_fork_isolation ~ctx snap =
  (* twin forks: run one to completion, the other must still hold the
     captured memory bit-for-bit (CoW pages never leak between forks) *)
  let am, ak, ap = Snapshot.fork snap in
  let bm, _bk, _bp = Snapshot.fork snap in
  ignore (run_to budget ak ap);
  ignore am;
  let untouched = Phys_mem.snapshot (Machine.mem bm) in
  Alcotest.(check int)
    (ctx ^ ": sibling fork unperturbed by a completed twin")
    0
    (List.length (Phys_mem.diff_images (Snapshot.mem_image snap) untouched))

let prop_snapshot_roundtrip =
  QCheck.Test.make ~count:12
    ~name:"snapshot/restore/fork: byte-identical replay on all schemes x engines"
    arb_case
    (fun ((_, scheme, engine, _) as case) ->
      let ctx =
        Printf.sprintf "%s/%s" (Pass.scheme_name scheme) (Machine.engine_name engine)
      in
      Test_engine.with_hot_threshold 1 (fun () ->
          let final1, met1, snap = check_restore_exact ~ctx case in
          check_fork_exact ~ctx snap final1 met1;
          check_fork_isolation ~ctx snap);
      true)

(* ---------- diff localization ---------- *)

let victim_exe scheme = compile ~scheme Roload_security.Victim.source

let test_diff_localization () =
  let exe = victim_exe Pass.Vcall in
  let machine, kernel, process = boot exe in
  ignore (run_to 2_000L kernel process);
  let snap = Snapshot.capture ~machine ~kernel ~process in
  let am, _ak, _ap = Snapshot.fork snap in
  let bm, _bk, _bp = Snapshot.fork snap in
  (* untouched twins diff empty *)
  let im_a () = Phys_mem.snapshot (Machine.mem am) in
  let im_b () = Phys_mem.snapshot (Machine.mem bm) in
  Alcotest.(check int) "twin forks diff empty" 0
    (List.length (Phys_mem.diff_images (im_a ()) (im_b ())));
  (* plant a single backdoor bit flip in fork A: bit 11 of the word at
     0x5008 flips byte 0x5009 (bit 3 of it) *)
  let addr = 0x5008 and bit = 11 in
  Phys_mem.flip_bit (Machine.mem am) ~addr ~bit;
  (match Phys_mem.diff_images (im_b ()) (im_a ()) with
  | [ d ] ->
    Alcotest.(check int) "tampered page" (addr lsr Phys_mem.page_shift) d.Phys_mem.page;
    Alcotest.(check int) "first differing byte" (addr + (bit / 8)) d.Phys_mem.addr;
    Alcotest.(check bool) "bytes really differ" true
      (d.Phys_mem.a_byte <> d.Phys_mem.b_byte)
  | ds -> Alcotest.failf "expected exactly one differing page, got %d" (List.length ds));
  (* the tampered fork no longer matches the snapshot either, at the same spot *)
  (match Phys_mem.diff_images (Snapshot.mem_image snap) (im_a ()) with
  | [ d ] ->
    Alcotest.(check int) "tampered page vs snapshot" (addr lsr Phys_mem.page_shift)
      d.Phys_mem.page
  | ds ->
    Alcotest.failf "expected exactly one page vs snapshot, got %d" (List.length ds));
  (* fork B stayed clean against the snapshot *)
  Alcotest.(check int) "clean twin still diffs empty vs snapshot" 0
    (List.length (Phys_mem.diff_images (Snapshot.mem_image snap) (im_b ())))

(* ---------- restore composes with the in-place machine ---------- *)

(* Snapshot at two different frontiers of one run and hop between them:
   restores are repeatable and an image survives any number of uses. *)
let test_snapshot_ladder () =
  let exe = victim_exe Pass.Icall in
  let machine, kernel, process = boot exe in
  ignore (run_to 1_000L kernel process);
  let early = Snapshot.capture ~machine ~kernel ~process in
  ignore (run_to 3_000L kernel process);
  let late = Snapshot.capture ~machine ~kernel ~process in
  let finish () = outcome_str (run_to budget kernel process) in
  let from_late = finish () in
  Snapshot.restore early ~machine ~kernel ~process;
  let from_early = finish () in
  Snapshot.restore late ~machine ~kernel ~process;
  let from_late2 = finish () in
  Snapshot.restore early ~machine ~kernel ~process;
  let from_early2 = finish () in
  Alcotest.(check string) "late image replays" from_late from_late2;
  Alcotest.(check string) "early image replays" from_early from_early2;
  Alcotest.(check string) "both frontiers reach the same end" from_late from_early

let suite =
  [
    Seeded.to_alcotest prop_snapshot_roundtrip;
    Alcotest.test_case "diff localizes a planted bit flip" `Quick test_diff_localization;
    Alcotest.test_case "snapshot ladder: hop between frontiers" `Quick
      test_snapshot_ladder;
  ]
