(* IR-level tests: construction helpers, the verifier's error detection,
   printing, and signature identity. *)

module Ir = Roload_ir.Ir
module Verify = Roload_ir.Verify

let empty_func name =
  { Ir.f_name = name; f_sig = { Ir.params = []; ret = Ir.I64 }; f_params = [];
    f_blocks = []; f_ntemps = 0; f_frame_slots = []; f_cfi_id = None }

let empty_module () =
  { Ir.m_name = "t"; m_funcs = []; m_globals = []; m_vtables = []; m_ret_key = None }

let ret_block ?(label = "entry") v =
  { Ir.b_label = label; b_instrs = []; b_term = Ir.Ret (Some v) }

let test_temps_and_slots () =
  let f = empty_func "f" in
  let t0 = Ir.new_temp f in
  let t1 = Ir.new_temp f in
  Alcotest.(check bool) "temps distinct" true (t0 <> t1);
  Alcotest.(check int) "count" 2 f.Ir.f_ntemps;
  let s0 = Ir.new_frame_slot f ~size:64 in
  let s1 = Ir.new_frame_slot f ~size:8 in
  Alcotest.(check bool) "slots distinct" true (s0 <> s1);
  Alcotest.(check int) "slot count" 2 (List.length f.Ir.f_frame_slots)

let test_signature_id_stability () =
  let s1 = { Ir.params = [ Ir.I64; Ir.Ptr Ir.I8 ]; ret = Ir.I64 } in
  let s2 = { Ir.params = [ Ir.I64; Ir.Ptr Ir.I8 ]; ret = Ir.I64 } in
  let s3 = { Ir.params = [ Ir.I64 ]; ret = Ir.I64 } in
  Alcotest.(check string) "equal sigs share ids" (Ir.signature_id s1) (Ir.signature_id s2);
  Alcotest.(check bool) "different sigs differ" true
    (Ir.signature_id s1 <> Ir.signature_id s3)

let test_verify_accepts_valid () =
  let m = empty_module () in
  let f = empty_func "f" in
  let t = Ir.new_temp f in
  f.Ir.f_blocks <-
    [ { Ir.b_label = "entry";
        b_instrs = [ Ir.Bin (Ir.Add, t, Ir.Const 1L, Ir.Const 2L) ];
        b_term = Ir.Ret (Some (Ir.Temp t)) } ];
  m.Ir.m_funcs <- [ f ];
  Alcotest.(check (list string)) "no errors" [] (Verify.check_module m)

let test_verify_rejects_bad_branch () =
  let m = empty_module () in
  let f = empty_func "f" in
  f.Ir.f_blocks <- [ { Ir.b_label = "entry"; b_instrs = []; b_term = Ir.Br "nowhere" } ];
  m.Ir.m_funcs <- [ f ];
  Alcotest.(check bool) "error reported" true (Verify.check_module m <> [])

let test_verify_rejects_bad_temp () =
  let m = empty_module () in
  let f = empty_func "f" in
  f.Ir.f_blocks <- [ ret_block (Ir.Temp 7) ] (* temp 7 never allocated *);
  m.Ir.m_funcs <- [ f ];
  Alcotest.(check bool) "error reported" true (Verify.check_module m <> [])

let test_verify_rejects_bad_slot () =
  let m = empty_module () in
  let f = empty_func "f" in
  let t = Ir.new_temp f in
  f.Ir.f_blocks <-
    [ { Ir.b_label = "entry"; b_instrs = [ Ir.Lea_frame (t, 3) ];
        b_term = Ir.Ret None } ];
  m.Ir.m_funcs <- [ f ];
  Alcotest.(check bool) "error reported" true (Verify.check_module m <> [])

let test_verify_rejects_dangling_global_ref () =
  let m = empty_module () in
  m.Ir.m_globals <-
    [ { Ir.g_name = "g"; g_section = ".data"; g_init = [ Ir.G_func "missing" ];
        g_bytes = None; g_zero = 0 } ];
  Alcotest.(check bool) "error reported" true (Verify.check_module m <> [])

let test_verify_rejects_duplicate_labels () =
  let m = empty_module () in
  let f = empty_func "f" in
  f.Ir.f_blocks <- [ ret_block (Ir.Const 0L); ret_block (Ir.Const 1L) ];
  m.Ir.m_funcs <- [ f ];
  Alcotest.(check bool) "error reported" true (Verify.check_module m <> [])

let has_error_mentioning needle errors =
  List.exists
    (fun e ->
      let re = Str.regexp_string needle in
      try ignore (Str.search_forward re e 0); true with Not_found -> false)
    errors

let test_verify_rejects_duplicate_functions () =
  let m = empty_module () in
  let mk () =
    let f = empty_func "twin" in
    f.Ir.f_blocks <- [ ret_block (Ir.Const 0L) ];
    f
  in
  m.Ir.m_funcs <- [ mk (); mk () ];
  Alcotest.(check bool) "error reported" true
    (has_error_mentioning "duplicate function name twin" (Verify.check_module m))

let test_verify_rejects_duplicate_globals () =
  let m = empty_module () in
  let g name =
    { Ir.g_name = name; g_section = ".data"; g_init = [ Ir.G_int 0L ];
      g_bytes = None; g_zero = 0 }
  in
  m.Ir.m_globals <- [ g "dup"; g "dup"; g "other" ];
  let errors = Verify.check_module m in
  Alcotest.(check bool) "error reported" true
    (has_error_mentioning "duplicate global name dup" errors);
  Alcotest.(check bool) "unique global not flagged" false
    (has_error_mentioning "other" errors)

let test_printing () =
  let i =
    Ir.Load { dst = 0; addr = Ir.Global "tbl"; offset = 8; width = Ir.W64;
              md = { Ir.roload_key = Some 7; ro_elided = false } }
  in
  Alcotest.(check string) "roload-md rendered" "%t0 = load.64 @tbl+8 !roload(7)"
    (Ir.instr_to_string i);
  Alcotest.(check string) "cbr" "cbr %t1, a, b" (Ir.term_to_string (Ir.Cbr (Ir.Temp 1, "a", "b")))

let test_uses_defs () =
  let i = Ir.Bin (Ir.Add, 3, Ir.Temp 1, Ir.Temp 2) in
  Alcotest.(check (list int)) "defs" [ 3 ] (Ir.instr_defs i);
  Alcotest.(check (list int)) "uses" [ 1; 2 ] (Ir.instr_uses i);
  let c = Ir.Call { dst = Some 5; callee = "f"; args = [ Ir.Temp 4; Ir.Const 0L ] } in
  Alcotest.(check (list int)) "call defs" [ 5 ] (Ir.instr_defs c);
  Alcotest.(check (list int)) "call uses" [ 4 ] (Ir.instr_uses c);
  Alcotest.(check bool) "call is call" true (Ir.is_call c);
  Alcotest.(check bool) "bin is not" false (Ir.is_call i)

let suite =
  [
    Alcotest.test_case "temps and slots" `Quick test_temps_and_slots;
    Alcotest.test_case "signature identity" `Quick test_signature_id_stability;
    Alcotest.test_case "verify accepts valid" `Quick test_verify_accepts_valid;
    Alcotest.test_case "verify rejects bad branch" `Quick test_verify_rejects_bad_branch;
    Alcotest.test_case "verify rejects bad temp" `Quick test_verify_rejects_bad_temp;
    Alcotest.test_case "verify rejects bad slot" `Quick test_verify_rejects_bad_slot;
    Alcotest.test_case "verify rejects dangling refs" `Quick test_verify_rejects_dangling_global_ref;
    Alcotest.test_case "verify rejects duplicate labels" `Quick test_verify_rejects_duplicate_labels;
    Alcotest.test_case "verify rejects duplicate functions" `Quick test_verify_rejects_duplicate_functions;
    Alcotest.test_case "verify rejects duplicate globals" `Quick test_verify_rejects_duplicate_globals;
    Alcotest.test_case "printing" `Quick test_printing;
    Alcotest.test_case "uses/defs" `Quick test_uses_defs;
  ]
