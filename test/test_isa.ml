(* ISA tests: golden encodings (cross-checked against the RISC-V spec),
   encode∘decode round-trips as properties, compressed forms, and the
   ROLoad-family encodings. *)

module Inst = Roload_isa.Inst
module Reg = Roload_isa.Reg
module Encode = Roload_isa.Encode
module Decode = Roload_isa.Decode
module Compressed = Roload_isa.Compressed
module Ext = Roload_isa.Roload_ext

let check_hex name expected got =
  Alcotest.(check string) name (Printf.sprintf "%08x" expected) (Printf.sprintf "%08x" got)

(* golden values computed from the RISC-V ISA manual encodings *)
let test_golden_encodings () =
  check_hex "addi a0, a0, 1" 0x00150513 (Encode.encode (Inst.Op_imm (Inst.Add, Reg.a0, Reg.a0, 1L)));
  check_hex "add a0, a1, a2" 0x00c58533 (Encode.encode (Inst.Op (Inst.Add, Reg.a0, Reg.a1, Reg.a2)));
  check_hex "sub a0, a1, a2" 0x40c58533 (Encode.encode (Inst.Op (Inst.Sub, Reg.a0, Reg.a1, Reg.a2)));
  check_hex "lui a0, 0x12345" 0x12345537 (Encode.encode (Inst.Lui (Reg.a0, 0x12345L)));
  check_hex "ld a0, 8(sp)" 0x00813503
    (Encode.encode (Inst.Load { width = Inst.Double; unsigned = false; rd = Reg.a0; rs1 = Reg.sp; imm = 8L }));
  check_hex "sd a0, 8(sp)" 0x00a13423
    (Encode.encode (Inst.Store { width = Inst.Double; rs2 = Reg.a0; rs1 = Reg.sp; imm = 8L }));
  check_hex "jalr ra, 0(a0)" 0x000500e7 (Encode.encode (Inst.Jalr (Reg.ra, Reg.a0, 0L)));
  check_hex "ecall" 0x00000073 (Encode.encode Inst.Ecall);
  check_hex "ebreak" 0x00100073 (Encode.encode Inst.Ebreak);
  check_hex "mul a0, a1, a2" 0x02c58533 (Encode.encode (Inst.Mulop (Inst.Mul, Reg.a0, Reg.a1, Reg.a2)));
  check_hex "srai a0, a0, 3" 0x40355513 (Encode.encode (Inst.Op_imm (Inst.Sra, Reg.a0, Reg.a0, 3L)));
  check_hex "beq a0, a1, 8" 0x00b50463 (Encode.encode (Inst.Branch (Inst.Beq, Reg.a0, Reg.a1, 8L)));
  check_hex "jal ra, 16" 0x010000ef (Encode.encode (Inst.Jal (Reg.ra, 16L)))

(* the ROLoad family uses custom-0 (0x0B) with the key in imm[9:0] *)
let test_roload_encoding () =
  let w = Encode.encode (Inst.Load_ro { width = Inst.Double; unsigned = false; rd = Reg.a0; rs1 = Reg.a1; key = 111 }) in
  Alcotest.(check int) "opcode is custom-0" 0x0B (w land 0x7F);
  Alcotest.(check int) "funct3 is ld's" 3 ((w lsr 12) land 7);
  Alcotest.(check int) "key in imm[9:0]" 111 ((w lsr 20) land 0x3FF);
  match Decode.decode w with
  | Ok (Inst.Load_ro { key = 111; _ }) -> ()
  | Ok i -> Alcotest.failf "decoded to %s" (Inst.to_string i)
  | Error e -> Alcotest.fail e

let test_roload_reserved_bits () =
  (* imm[11:10] set -> reserved, must not decode *)
  let w = 0x0B lor (3 lsl 12) lor (10 lsl 7) lor (11 lsl 15) lor (0xC00 lsl 20) in
  match Decode.decode w with
  | Error _ -> ()
  | Ok i -> Alcotest.failf "reserved key bits decoded as %s" (Inst.to_string i)

let test_key_range () =
  Alcotest.check_raises "key 1024 rejected" (Encode.Invalid "ld.ro: key 1024 out of range")
    (fun () ->
      ignore
        (Encode.encode
           (Inst.Load_ro { width = Inst.Double; unsigned = false; rd = Reg.a0; rs1 = Reg.a1; key = 1024 })))

let test_compressed_ldro () =
  (* c.ld.ro lives in quadrant 0, funct3=100, key <= 31 *)
  let i = Inst.Load_ro { width = Inst.Double; unsigned = false; rd = Reg.a0; rs1 = Reg.a1; key = 21 } in
  match Compressed.try_compress i with
  | None -> Alcotest.fail "c.ld.ro should compress"
  | Some hw ->
    Alcotest.(check int) "quadrant 0" 0 (hw land 3);
    Alcotest.(check int) "funct3 = 100" 4 ((hw lsr 13) land 7);
    (match Compressed.decode hw with
    | Ok i2 -> Alcotest.(check bool) "round trip" true (Inst.equal i i2)
    | Error e -> Alcotest.fail e)

let test_compressed_key_limit () =
  let i = Inst.Load_ro { width = Inst.Double; unsigned = false; rd = Reg.a0; rs1 = Reg.a1; key = 32 } in
  Alcotest.(check bool) "key 32 not compressible" true (Compressed.try_compress i = None)

let test_compressed_not_for_bad_regs () =
  (* rd outside x8..x15 cannot use the CL format *)
  let i = Inst.Load_ro { width = Inst.Double; unsigned = false; rd = Reg.t3; rs1 = Reg.a1; key = 1 } in
  Alcotest.(check bool) "t3 not compressible" true (Compressed.try_compress i = None)

let test_compressed_goldens () =
  (* c.nop is 0x0001 *)
  (match Compressed.decode 0x0001 with
  | Ok i -> Alcotest.(check string) "c.nop" "li zero, 0" (Inst.to_string i)
  | Error e -> Alcotest.fail e);
  (* c.add a0, a1 = 0x952e *)
  (match Compressed.decode 0x952e with
  | Ok (Inst.Op (Inst.Add, rd, rs1, rs2)) ->
    Alcotest.(check string) "c.add regs" "a0 a0 a1"
      (Printf.sprintf "%s %s %s" (Reg.name rd) (Reg.name rs1) (Reg.name rs2))
  | Ok i -> Alcotest.failf "c.add decoded to %s" (Inst.to_string i)
  | Error e -> Alcotest.fail e);
  (* the all-zero parcel is illegal *)
  match Compressed.decode 0x0000 with
  | Error _ -> ()
  | Ok i -> Alcotest.failf "zero parcel decoded as %s" (Inst.to_string i)

(* ---------- generators for round-trip properties ---------- *)

let gen_reg = QCheck.Gen.map Reg.of_int (QCheck.Gen.int_bound 31)
let gen_imm12 = QCheck.Gen.map Int64.of_int (QCheck.Gen.int_range (-2048) 2047)
let gen_imm20 = QCheck.Gen.map Int64.of_int (QCheck.Gen.int_bound 0xFFFFF)
let gen_shamt = QCheck.Gen.map Int64.of_int (QCheck.Gen.int_bound 63)
let gen_key = QCheck.Gen.int_bound 1023
let gen_width = QCheck.Gen.oneofl [ Inst.Byte; Inst.Half; Inst.Word; Inst.Double ]

let gen_inst =
  QCheck.Gen.(
    frequency
      [
        (2, map2 (fun r i -> Inst.Lui (r, i)) gen_reg gen_imm20);
        (2, map2 (fun r i -> Inst.Auipc (r, i)) gen_reg gen_imm20);
        (2, map2 (fun r i -> Inst.Jal (r, Int64.of_int (2 * Int64.to_int i)))
             gen_reg (map Int64.of_int (int_range (-524288) 524287)));
        (2, map3 (fun rd rs1 i -> Inst.Jalr (rd, rs1, i)) gen_reg gen_reg gen_imm12);
        (3, map3 (fun c (r1, r2) off -> Inst.Branch (c, r1, r2, Int64.of_int (2 * off)))
             (oneofl [ Inst.Beq; Inst.Bne; Inst.Blt; Inst.Bge; Inst.Bltu; Inst.Bgeu ])
             (pair gen_reg gen_reg) (int_range (-2048) 2047));
        (3, gen_width >>= fun width ->
            gen_reg >>= fun rd ->
            gen_reg >>= fun rs1 ->
            gen_imm12 >>= fun imm ->
            map (fun unsigned ->
                let unsigned = unsigned && width <> Inst.Double in
                Inst.Load { width; unsigned; rd; rs1; imm })
              bool);
        (3, map3 (fun width (rs2, rs1) imm -> Inst.Store { width; rs2; rs1; imm })
             gen_width (pair gen_reg gen_reg) gen_imm12);
        (3, oneofl [ Inst.Add; Inst.Slt; Inst.Sltu; Inst.Xor; Inst.Or; Inst.And ]
            >>= fun op -> map2 (fun rd rs1 -> Inst.Op_imm (op, rd, rs1, 42L)) gen_reg gen_reg);
        (2, oneofl [ Inst.Sll; Inst.Srl; Inst.Sra ]
            >>= fun op ->
            map3 (fun rd rs1 sh -> Inst.Op_imm (op, rd, rs1, sh)) gen_reg gen_reg gen_shamt);
        (3, oneofl [ Inst.Add; Inst.Sub; Inst.Sll; Inst.Slt; Inst.Sltu; Inst.Xor;
                     Inst.Srl; Inst.Sra; Inst.Or; Inst.And ]
            >>= fun op ->
            map3 (fun rd rs1 rs2 -> Inst.Op (op, rd, rs1, rs2)) gen_reg gen_reg gen_reg);
        (2, oneofl [ Inst.Mul; Inst.Mulh; Inst.Mulhsu; Inst.Mulhu; Inst.Div; Inst.Divu;
                     Inst.Rem; Inst.Remu ]
            >>= fun op ->
            map3 (fun rd rs1 rs2 -> Inst.Mulop (op, rd, rs1, rs2)) gen_reg gen_reg gen_reg);
        (2, gen_key >>= fun key ->
            map3 (fun width rd rs1 ->
                let width = if width = Inst.Double then Inst.Word else width in
                Inst.Load_ro { width; unsigned = false; rd; rs1; key })
              gen_width gen_reg gen_reg);
        (2, map2 (fun rd rs1 -> Inst.ld_ro rd rs1 7) gen_reg gen_reg);
        (1, return Inst.Ecall);
        (1, return Inst.Ebreak);
        (1, return Inst.Fence);
      ])

let arb_inst = QCheck.make ~print:Inst.to_string gen_inst

let prop_encode_decode =
  QCheck.Test.make ~count:2000 ~name:"decode (encode i) = i for valid i" arb_inst
    (fun i ->
      QCheck.assume (Inst.valid i);
      match Decode.decode (Encode.encode i) with
      | Ok i2 -> Inst.equal i i2
      | Error _ -> false)

let prop_encoded_is_32bit =
  QCheck.Test.make ~count:1000 ~name:"encodings are 32-bit with low bits 11" arb_inst
    (fun i ->
      QCheck.assume (Inst.valid i);
      let w = Encode.encode i in
      w land 3 = 3 && w lsr 32 = 0)

(* compressed instructions must round-trip to semantically identical
   expansions — checked by comparing the expansion with the original *)
let prop_compress_roundtrip =
  QCheck.Test.make ~count:2000 ~name:"compressed forms expand to the original" arb_inst
    (fun i ->
      QCheck.assume (Inst.valid i);
      match Compressed.try_compress i with
      | None -> true
      | Some hw -> (
        match Compressed.decode hw with
        | Ok i2 -> Inst.equal i i2
        | Error _ -> false))

let prop_compressed_is_16bit =
  QCheck.Test.make ~count:1000 ~name:"compressed encodings fit 16 bits, low bits <> 11"
    arb_inst
    (fun i ->
      QCheck.assume (Inst.valid i);
      match Compressed.try_compress i with
      | None -> true
      | Some hw -> hw land 3 <> 3 && hw lsr 16 = 0 && hw <> 0)

(* decoder totality: any 32-bit word either decodes or errors — never
   raises — and accepted words re-encode to themselves when canonical *)
let prop_decoder_total =
  QCheck.Test.make ~count:3000 ~name:"decoder is total on random words"
    QCheck.(pair (int_bound 0xFFFF) (int_bound 0xFFFF))
    (fun (lo, hi) ->
      let w = lo lor (hi lsl 16) in
      match Decode.decode w with
      | Ok _ | Error _ -> true)

let prop_compressed_decoder_total =
  QCheck.Test.make ~count:3000 ~name:"compressed decoder is total on random parcels"
    QCheck.(int_bound 0xFFFF)
    (fun hw ->
      match Compressed.decode hw with
      | Ok _ | Error _ -> true)

let test_disasm_roundtrip () =
  let insts =
    [ Inst.li Reg.a0 42L; Inst.ld_ro Reg.a0 Reg.a1 111;
      Inst.Op (Inst.Add, Reg.a0, Reg.a0, Reg.a1); Inst.ret ]
  in
  let code = String.concat "" (List.map Roload_isa.Encode.encode_bytes insts) in
  let items = Roload_isa.Disasm.disassemble code in
  Alcotest.(check int) "count" 4 (List.length items);
  Alcotest.(check string) "first" "li a0, 42" (List.nth items 0).Roload_isa.Disasm.text;
  Alcotest.(check string) "roload" "ld.ro a0, (a1), 111"
    (List.nth items 1).Roload_isa.Disasm.text

let test_ext_constants () =
  Alcotest.(check int) "key bits" 10 Ext.key_bits;
  Alcotest.(check bool) "1023 in range" true (Ext.key_in_range 1023);
  Alcotest.(check bool) "31 compressible" true (Ext.key_compressible 31);
  Alcotest.(check bool) "32 not compressible" false (Ext.key_compressible 32)

let test_reg_names () =
  Alcotest.(check string) "a0" "a0" (Reg.name Reg.a0);
  Alcotest.(check bool) "of_name a0" true (Reg.of_name "a0" = Some Reg.a0);
  Alcotest.(check bool) "of_name x10" true (Reg.of_name "x10" = Some Reg.a0);
  Alcotest.(check bool) "of_name fp" true (Reg.of_name "fp" = Some Reg.s0);
  Alcotest.(check bool) "of_name bogus" true (Reg.of_name "q7" = None);
  Alcotest.(check bool) "a0 compressible" true (Reg.is_compressible Reg.a0);
  Alcotest.(check bool) "t3 not compressible" false (Reg.is_compressible Reg.t3)

let suite =
  [
    Alcotest.test_case "golden encodings" `Quick test_golden_encodings;
    Alcotest.test_case "roload encoding" `Quick test_roload_encoding;
    Alcotest.test_case "roload reserved bits" `Quick test_roload_reserved_bits;
    Alcotest.test_case "key range enforcement" `Quick test_key_range;
    Alcotest.test_case "c.ld.ro" `Quick test_compressed_ldro;
    Alcotest.test_case "c.ld.ro key limit" `Quick test_compressed_key_limit;
    Alcotest.test_case "compression register limits" `Quick test_compressed_not_for_bad_regs;
    Alcotest.test_case "compressed goldens" `Quick test_compressed_goldens;
    Alcotest.test_case "disassembler" `Quick test_disasm_roundtrip;
    Alcotest.test_case "extension constants" `Quick test_ext_constants;
    Alcotest.test_case "register names" `Quick test_reg_names;
    Seeded.to_alcotest prop_decoder_total;
    Seeded.to_alcotest prop_compressed_decoder_total;
    Seeded.to_alcotest prop_encode_decode;
    Seeded.to_alcotest prop_encoded_is_32bit;
    Seeded.to_alcotest prop_compress_roundtrip;
    Seeded.to_alcotest prop_compressed_is_16bit;
  ]
