(* roload-chaos tests: campaign acceptance, crash containment + bounded
   retry, checkpoint/resume byte-identity, the empty-plan bit-identity
   property, fuel exhaustion, and corpus reproducer replay. *)

module Campaign = Roload_inject.Campaign
module Fault = Roload_inject.Fault
module Plan = Roload_inject.Plan
module Chaos_victim = Roload_inject.Chaos_victim
module Pass = Roload_passes.Pass
module Machine = Roload_machine.Machine
module Kernel = Roload_kernel.Kernel
module Process = Roload_kernel.Process
module System = Core.System
module Metrics = Roload_obs.Metrics

(* seed 3 at count 15 covers all six classes including both redirect
   sinks, so every facet below has cells to assert on *)
let small_config =
  { Campaign.default_config with Campaign.seed = 3L; count = 15; jobs = Some 4 }

(* one shared small campaign: several tests assert different facets *)
let small_report = lazy (Campaign.run small_config)

let rows_of rp ~cls ~scheme =
  List.filter
    (fun (r : Campaign.row) ->
      String.equal r.Campaign.cls cls && String.equal r.Campaign.scheme scheme)
    rp.Campaign.rows

(* Acceptance: every PTE-key / RO-page / TLB tampering under a ROLoad
   scheme is detected by the ld.ro machinery itself — 100%, no Masked,
   no Silent. *)
let test_tamper_detected_under_roload () =
  let rp = Lazy.force small_report in
  List.iter
    (fun scheme ->
      List.iter
        (fun cls ->
          let rs = rows_of rp ~cls ~scheme in
          Alcotest.(check bool)
            (Printf.sprintf "%s cells exist under %s" cls scheme)
            true (rs <> []);
          List.iter
            (fun (r : Campaign.row) ->
              Alcotest.(check string)
                (Printf.sprintf "%s #%d under %s" cls r.Campaign.index scheme)
                "detected-roload"
                (match Campaign.verdict_of_row r with
                | Some v -> Fault.verdict_name v
                | None -> "failed"))
            rs)
        Campaign.tamper_classes)
    [ "VCall"; "ICall" ]

(* ... while the very same plan entries are consumed silently by the
   stock system and the label-CFI baseline (Masked: keys are ignored). *)
let test_tamper_masked_under_baselines () =
  let rp = Lazy.force small_report in
  List.iter
    (fun scheme ->
      List.iter
        (fun cls ->
          List.iter
            (fun (r : Campaign.row) ->
              Alcotest.(check bool)
                (Printf.sprintf "%s #%d masked under %s" cls r.Campaign.index scheme)
                true
                (Campaign.verdict_of_row r = Some Fault.Masked))
            (rows_of rp ~cls ~scheme))
        Campaign.tamper_classes)
    [ "none"; "CFI" ]

(* The paper's motivating gap: some pointer redirect corrupts output
   silently under stock and label-CFI, and never under a ROLoad scheme. *)
let test_silent_corruption_split () =
  let rp = Lazy.force small_report in
  let silent scheme =
    List.length
      (List.filter
         (fun (r : Campaign.row) ->
           String.equal r.Campaign.scheme scheme
           && Campaign.verdict_of_row r = Some Fault.Silent_corruption)
         rp.Campaign.rows)
  in
  Alcotest.(check bool) "stock suffers silent corruption" true (silent "none" >= 1);
  Alcotest.(check bool) "label CFI suffers silent corruption" true (silent "CFI" >= 1);
  let g = Campaign.gate rp in
  Alcotest.(check int) "zero silent under roload schemes" 0
    g.Campaign.silent_under_roload;
  Alcotest.(check int) "zero undetected tampering" 0 g.Campaign.undetected_tamper;
  Alcotest.(check int) "zero cell failures" 0 g.Campaign.cell_failures;
  Alcotest.(check bool) "oracle cross-check agreed" true
    ((not rp.Campaign.oracle_checked) || rp.Campaign.oracle_agreed)

(* Containment: a cell that keeps crashing becomes a structured failure
   row (with the attempt count) and the rest of the campaign completes. *)
let test_cell_failure_contained () =
  let cfg =
    {
      small_config with
      Campaign.count = 6;
      attempts = 2;
      sabotage =
        Some
          (fun ~index ~scheme:_ ~attempt:_ ->
            if index = 2 then failwith "sabotaged cell");
    }
  in
  let rp = Campaign.run cfg in
  let failed, ok =
    List.partition (fun (r : Campaign.row) -> r.Campaign.outcome = Campaign.Failed)
      rp.Campaign.rows
  in
  Alcotest.(check bool) "sabotaged cells failed" true (failed <> []);
  List.iter
    (fun (r : Campaign.row) ->
      Alcotest.(check int) "failure row names the sabotaged index" 2 r.Campaign.index;
      Alcotest.(check int) "retried the configured number of times" 2
        r.Campaign.attempts;
      Alcotest.(check bool) "error text preserved" true
        (String.length r.Campaign.detail > 0))
    failed;
  Alcotest.(check bool) "other cells completed" true (List.length ok > List.length failed)

(* Bounded retry: a cell that crashes only on its first attempt succeeds
   on the re-seeded second attempt and records attempts = 2. *)
let test_cell_retry_recovers () =
  let cfg =
    {
      small_config with
      Campaign.count = 4;
      attempts = 3;
      sabotage =
        Some
          (fun ~index ~scheme:_ ~attempt ->
            if index = 1 && attempt = 1 then failwith "flaky cell");
    }
  in
  let rp = Campaign.run cfg in
  let g = Campaign.gate rp in
  Alcotest.(check int) "no failure rows" 0 g.Campaign.cell_failures;
  let flaky =
    List.filter (fun (r : Campaign.row) -> r.Campaign.index = 1) rp.Campaign.rows
  in
  Alcotest.(check bool) "flaky cells exist" true (flaky <> []);
  List.iter
    (fun (r : Campaign.row) ->
      Alcotest.(check int) "second attempt succeeded" 2 r.Campaign.attempts)
    flaky

(* Checkpoint/resume: kill the campaign mid-run (max_cells), resume from
   the checkpoint, and require the rendered report byte-identical to an
   uninterrupted run. *)
let test_resume_byte_identical () =
  let ck = Filename.temp_file "roload-chaos" ".tsv" in
  let cfg =
    { small_config with Campaign.count = 8; seed = 7L; checkpoint = Some ck }
  in
  let partial =
    Campaign.run { cfg with Campaign.max_cells = Some 11 }
  in
  Alcotest.(check bool) "partial run stopped early" true
    (List.length partial.Campaign.rows = 11);
  let resumed = Campaign.run { cfg with Campaign.resume = true } in
  let fresh = Campaign.run { cfg with Campaign.checkpoint = None } in
  Sys.remove ck;
  Alcotest.(check string) "resumed report byte-identical to uninterrupted run"
    (Campaign.render fresh) (Campaign.render resumed);
  Alcotest.(check string) "resumed JSON byte-identical" (Campaign.to_json fresh)
    (Campaign.to_json resumed)

(* Campaign equivalence: the snapshot-seeded fan-out (the default) and
   the boot-every-cell-from-reset path must produce byte-identical
   reports — coverage table, rows, JSON and localization diffs — on the
   pinned seed.  This is the acceptance bar for snapshot seeding: only
   the throughput may change. *)
let test_snapshot_seeding_equivalence () =
  let cfg = { small_config with Campaign.seed = 1L; count = 10 } in
  let seeded = Campaign.run cfg in
  let reset = Campaign.run { cfg with Campaign.from_reset = true } in
  Alcotest.(check string) "rendered tables byte-identical" (Campaign.render reset)
    (Campaign.render seeded);
  Alcotest.(check string) "JSON byte-identical (incl. corruption diffs)"
    (Campaign.to_json reset) (Campaign.to_json seeded);
  Alcotest.(check string) "diff artifacts byte-identical"
    (Campaign.render_diffs reset) (Campaign.render_diffs seeded)

(* Checkpoint/resume under the snapshot fan-out is byte-identical at any
   job count: kill mid-run, resume at -j1 and at -j4, same JSON. *)
let test_resume_jobs_invariant () =
  let run jobs =
    let ck = Filename.temp_file "roload-chaos-j" ".tsv" in
    let cfg =
      {
        small_config with
        Campaign.count = 6;
        seed = 1L;
        jobs = Some jobs;
        checkpoint = Some ck;
      }
    in
    ignore (Campaign.run { cfg with Campaign.max_cells = Some 7 });
    let resumed = Campaign.run { cfg with Campaign.resume = true } in
    Sys.remove ck;
    Campaign.to_json resumed
  in
  Alcotest.(check string) "resumed snapshot fan-out: -j1 equals -j4" (run 1) (run 4)

(* A campaign is deterministic in the job count. *)
let test_jobs_invariant () =
  let cfg = { small_config with Campaign.count = 4; seed = 3L } in
  let j1 = Campaign.run { cfg with Campaign.jobs = Some 1 } in
  let j4 = Campaign.run { cfg with Campaign.jobs = Some 4 } in
  Alcotest.(check string) "-j1 equals -j4" (Campaign.render j1) (Campaign.render j4)

(* The empty-plan property: pausing at any point and resuming, with no
   injection applied, is bit-identical (status, output, cycles, full
   metrics) to an uninterrupted run — on both engines. *)
let test_empty_plan_bit_identity () =
  let schemes = [ Pass.Unprotected; Pass.Vcall; Pass.Icall ] in
  let exes = List.map (fun s -> (s, Campaign.compile_victim s)) schemes in
  let budget = 10_000_000L in
  let check engine (scheme, exe) permille =
    let plain, pm = Campaign.measure ~engine ~max_instructions:budget exe in
    let pause_at =
      Int64.div (Int64.mul plain.Kernel.instructions (Int64.of_int permille)) 1000L
    in
    let paused, qm =
      Campaign.measure ~engine ~max_instructions:budget ~pause_at exe
    in
    Alcotest.(check string)
      (Printf.sprintf "output (%s, %d permille)" (Pass.scheme_name scheme) permille)
      plain.Kernel.output paused.Kernel.output;
    Alcotest.(check bool) "status" true (plain.Kernel.status = paused.Kernel.status);
    Alcotest.(check int64) "cycles" plain.Kernel.cycles paused.Kernel.cycles;
    Alcotest.(check bool) "metrics" true (Metrics.core_equal pm qm)
  in
  List.iter
    (fun engine ->
      List.iter
        (fun se -> List.iter (check engine se) [ 1; 137; 500; 999 ])
        exes)
    [ Machine.Single_step; Machine.Block_cached ]

(* qcheck flavor of the same property: arbitrary pause points. *)
let prop_pause_identity =
  let exe = lazy (Campaign.compile_victim Pass.Vcall) in
  QCheck.Test.make ~name:"pause/resume at any point is bit-identical" ~count:25
    QCheck.(pair (int_range 1 999) bool)
    (fun (permille, block) ->
      let exe = Lazy.force exe in
      let engine = if block then Machine.Block_cached else Machine.Single_step in
      let budget = 10_000_000L in
      let plain, pm = Campaign.measure ~engine ~max_instructions:budget exe in
      let pause_at =
        let t =
          Int64.div (Int64.mul plain.Kernel.instructions (Int64.of_int permille)) 1000L
        in
        if Int64.compare t 1L < 0 then 1L else t
      in
      let paused, qm = Campaign.measure ~engine ~max_instructions:budget ~pause_at exe in
      plain.Kernel.status = paused.Kernel.status
      && String.equal plain.Kernel.output paused.Kernel.output
      && Int64.equal plain.Kernel.cycles paused.Kernel.cycles
      && Metrics.core_equal pm qm)

(* Fuel exhaustion: an infinite loop hits the cumulative instruction
   budget and surfaces as the distinct Running ("fuel exhausted")
   outcome — on both engines — rather than hanging or crashing. *)
let test_fuel_exhaustion () =
  let source = "int main() { int i = 0; while (i < 2) { i = i - i; } return 0; }" in
  let exe =
    Core.Toolchain.compile_exe ~name:"chaos-spin" source
  in
  List.iter
    (fun engine ->
      let m =
        System.run ~engine ~max_instructions:50_000L
          ~variant:System.Processor_kernel_modified exe
      in
      (match m.System.status with
      | Process.Running -> ()
      | _ -> Alcotest.fail "expected the watchdog to report fuel exhaustion");
      Alcotest.(check bool) "ran exactly to the budget" true
        (Int64.compare m.System.instructions 50_000L >= 0);
      Alcotest.(check string) "distinct status string" "running (instruction limit hit)"
        (System.status_string m))
    [ Machine.Single_step; Machine.Block_cached ];
  (* and the campaign classifies a still-running cell as divergent, not
     as detection *)
  let baseline =
    { Kernel.status = Process.Exited 0; instructions = 1000L; cycles = 1000L;
      peak_kib = 0; output = "x\n" }
  in
  let hung = { baseline with Kernel.status = Process.Running } in
  Alcotest.(check string) "watchdog verdict" "divergent-output"
    (Fault.verdict_name (fst (Campaign.classify ~baseline hung)))

(* Plans are seeded and prefix-stable. *)
let test_plan_determinism () =
  let a = Plan.build ~seed:42L ~count:30 in
  let b = Plan.build ~seed:42L ~count:30 in
  Alcotest.(check bool) "equal seeds, equal plans" true (a = b);
  let prefix = Plan.build ~seed:42L ~count:10 in
  Alcotest.(check bool) "shorter plan is a prefix" true
    (prefix = List.filteri (fun i _ -> i < 10) a);
  let c = Plan.build ~seed:43L ~count:30 in
  Alcotest.(check bool) "different seeds differ" true (a <> c)

(* Every pinned reproducer in corpus/ must still replay to its recorded
   verdicts. *)
let corpus_dir = "../corpus"

let test_corpus_replay () =
  let entries =
    if Sys.file_exists corpus_dir then
      Sys.readdir corpus_dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".chaos")
      |> List.sort compare
    else []
  in
  Alcotest.(check bool) "chaos corpus present" true (List.length entries >= 2);
  List.iter
    (fun entry ->
      let checks = Campaign.replay ~path:(Filename.concat corpus_dir entry) in
      List.iter
        (fun (c : Campaign.replay_check) ->
          Alcotest.(check string)
            (Printf.sprintf "%s: %s" entry c.Campaign.rc_scheme)
            c.Campaign.rc_expected c.Campaign.rc_actual)
        checks)
    entries

(* ---------- the live-server campaign ---------- *)

module Server_fault = Roload_inject.Server_fault

(* pinned server campaign: small but wide enough that the plan covers
   the redirect, a page-level tamper and the crash fault *)
let server_config =
  {
    Campaign.default_server_config with
    Campaign.sv_seed = 3L;
    sv_count = 6;
    sv_requests = 120;
    sv_schemes = [ Pass.Unprotected; Pass.Vcall; Pass.Icall ];
    sv_jobs = Some 4;
  }

let server_report = lazy (Campaign.run_server server_config)

(* Acceptance: under VCall/ICall every cell keeps availability at or
   above the floor with zero corrupted payloads (detection -> supervised
   restart -> redelivery), while the stock system commits silently
   corrupted payloads under the redirect. *)
let test_server_gates () =
  let rp = Lazy.force server_report in
  let g = Campaign.server_gate rp in
  Alcotest.(check int) "no low-availability cell under roload" 0
    g.Campaign.sg_low_availability;
  Alcotest.(check int) "no corrupted payload under roload" 0
    g.Campaign.sg_corrupted_under_roload;
  Alcotest.(check int) "no cell failures" 0 g.Campaign.sg_cell_failures;
  let stock_corrupted =
    List.filter
      (fun (r : Campaign.server_row) ->
        String.equal r.Campaign.sv_scheme "none"
        && r.Campaign.sv_tally.Server_fault.corrupted > 0)
      rp.Campaign.sv_rows
  in
  Alcotest.(check bool) "stock silently corrupts payloads on some class" true
    (stock_corrupted <> []);
  (* the plan covers the classes the assertions above speak for *)
  let classes =
    List.sort_uniq compare
      (List.map (fun (r : Campaign.server_row) -> r.Campaign.sv_cls) rp.Campaign.sv_rows)
  in
  Alcotest.(check bool) "plan covers the redirect" true
    (List.mem "ptr-redirect" classes);
  Alcotest.(check bool) "plan covers the crash fault" true
    (List.mem "worker-kill" classes);
  (* restarts actually happened somewhere: the supervisor is load-bearing *)
  let restarts =
    List.fold_left
      (fun acc (r : Campaign.server_row) -> acc + r.Campaign.sv_restarts)
      0 rp.Campaign.sv_rows
  in
  Alcotest.(check bool) "supervised restarts occurred" true (restarts > 0)

(* The availability table is byte-identical across -j and across all
   three engines. *)
let test_server_jobs_invariant () =
  let rp4 = Lazy.force server_report in
  let rp1 = Campaign.run_server { server_config with Campaign.sv_jobs = Some 1 } in
  Alcotest.(check string) "-j1 equals -j4" (Campaign.render_server rp1)
    (Campaign.render_server rp4);
  Alcotest.(check string) "-j1 equals -j4 (json)" (Campaign.server_to_json rp1)
    (Campaign.server_to_json rp4)

let test_server_engine_invariant () =
  let render engine =
    Campaign.render_server
      (Campaign.run_server { server_config with Campaign.sv_engine = Some engine })
  in
  let single = render Machine.Single_step in
  Alcotest.(check string) "block equals single" single (render Machine.Block_cached);
  let traced =
    let prev = Machine.default_hot_threshold () in
    Machine.set_default_hot_threshold 1;
    Fun.protect
      ~finally:(fun () -> Machine.set_default_hot_threshold prev)
      (fun () -> render Machine.Traced)
  in
  Alcotest.(check string) "traced equals single" single traced

(* Server checkpoint/resume with batched writes: kill the campaign
   mid-run, resume with a batch size that forces buffering, and require
   byte-identity with an uninterrupted run. *)
let test_server_resume_batched () =
  let ck = Filename.temp_file "roload-chaos-server" ".tsv" in
  let cfg =
    { server_config with Campaign.sv_checkpoint = Some ck; sv_checkpoint_batch = 4 }
  in
  let partial = Campaign.run_server { cfg with Campaign.sv_max_cells = Some 5 } in
  Alcotest.(check bool) "partial run stopped early" true
    (List.length partial.Campaign.sv_rows = 5);
  let resumed = Campaign.run_server { cfg with Campaign.sv_resume = true } in
  let fresh = Campaign.run_server { cfg with Campaign.sv_checkpoint = None } in
  Sys.remove ck;
  Alcotest.(check string) "resumed report byte-identical"
    (Campaign.render_server fresh)
    (Campaign.render_server resumed);
  Alcotest.(check string) "resumed JSON byte-identical"
    (Campaign.server_to_json fresh)
    (Campaign.server_to_json resumed)

(* The classic campaign with batched checkpointing resumes
   byte-identically too (batch boundaries never tear rows). *)
let test_classic_resume_batched () =
  let ck = Filename.temp_file "roload-chaos-batched" ".tsv" in
  let cfg =
    {
      small_config with
      Campaign.count = 6;
      seed = 7L;
      checkpoint = Some ck;
      checkpoint_batch = 5;
    }
  in
  ignore (Campaign.run { cfg with Campaign.max_cells = Some 9 });
  let resumed = Campaign.run { cfg with Campaign.resume = true } in
  let fresh = Campaign.run { cfg with Campaign.checkpoint = None } in
  Sys.remove ck;
  Alcotest.(check string) "batched resume byte-identical to uninterrupted run"
    (Campaign.to_json fresh) (Campaign.to_json resumed)

(* Server plans are seeded and prefix-stable. *)
let test_server_plan_determinism () =
  let a = Plan.build_server ~seed:42L ~count:30 in
  Alcotest.(check bool) "equal seeds, equal plans" true
    (a = Plan.build_server ~seed:42L ~count:30);
  Alcotest.(check bool) "shorter plan is a prefix" true
    (Plan.build_server ~seed:42L ~count:10 = List.filteri (fun i _ -> i < 10) a);
  Alcotest.(check bool) "different seeds differ" true
    (a <> Plan.build_server ~seed:43L ~count:30);
  (* the server taxonomy never draws the classes restarts cannot absorb *)
  List.iter
    (fun (inj : Server_fault.injection) ->
      match inj.Server_fault.kind with
      | Server_fault.Tamper (Fault.Phys_flip _) | Server_fault.Tamper Fault.Writeback_drop
        ->
        Alcotest.fail "phys-bit-flip/wb-drop must stay out of server plans"
      | _ -> ())
    (Plan.build_server ~seed:42L ~count:200)

let suite =
  [
    Alcotest.test_case "tampering detected 100% under roload" `Slow
      test_tamper_detected_under_roload;
    Alcotest.test_case "tampering masked under baselines" `Slow
      test_tamper_masked_under_baselines;
    Alcotest.test_case "silent corruption only under baselines" `Slow
      test_silent_corruption_split;
    Alcotest.test_case "cell failure contained" `Quick test_cell_failure_contained;
    Alcotest.test_case "bounded retry recovers flaky cell" `Quick
      test_cell_retry_recovers;
    Alcotest.test_case "resume is byte-identical" `Slow test_resume_byte_identical;
    Alcotest.test_case "snapshot-seeded equals from-reset" `Slow
      test_snapshot_seeding_equivalence;
    Alcotest.test_case "resume fan-out: -j1 equals -j4" `Slow test_resume_jobs_invariant;
    Alcotest.test_case "-j1 equals -j4" `Quick test_jobs_invariant;
    Alcotest.test_case "empty plan is bit-identical" `Quick test_empty_plan_bit_identity;
    Seeded.to_alcotest prop_pause_identity;
    Alcotest.test_case "fuel exhaustion is a distinct outcome" `Quick
      test_fuel_exhaustion;
    Alcotest.test_case "plans are seeded and prefix-stable" `Quick
      test_plan_determinism;
    Alcotest.test_case "corpus reproducers replay" `Slow test_corpus_replay;
    Alcotest.test_case "server campaign: roload gates hold, stock corrupts" `Slow
      test_server_gates;
    Alcotest.test_case "server campaign: -j1 equals -j4" `Slow
      test_server_jobs_invariant;
    Alcotest.test_case "server campaign: engines agree byte-identically" `Slow
      test_server_engine_invariant;
    Alcotest.test_case "server campaign: batched resume is byte-identical" `Slow
      test_server_resume_batched;
    Alcotest.test_case "classic campaign: batched resume is byte-identical" `Slow
      test_classic_resume_batched;
    Alcotest.test_case "server plans are seeded and prefix-stable" `Quick
      test_server_plan_determinism;
  ]
