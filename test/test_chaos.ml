(* roload-chaos tests: campaign acceptance, crash containment + bounded
   retry, checkpoint/resume byte-identity, the empty-plan bit-identity
   property, fuel exhaustion, and corpus reproducer replay. *)

module Campaign = Roload_inject.Campaign
module Fault = Roload_inject.Fault
module Plan = Roload_inject.Plan
module Chaos_victim = Roload_inject.Chaos_victim
module Pass = Roload_passes.Pass
module Machine = Roload_machine.Machine
module Kernel = Roload_kernel.Kernel
module Process = Roload_kernel.Process
module System = Core.System
module Metrics = Roload_obs.Metrics

(* seed 3 at count 15 covers all six classes including both redirect
   sinks, so every facet below has cells to assert on *)
let small_config =
  { Campaign.default_config with Campaign.seed = 3L; count = 15; jobs = Some 4 }

(* one shared small campaign: several tests assert different facets *)
let small_report = lazy (Campaign.run small_config)

let rows_of rp ~cls ~scheme =
  List.filter
    (fun (r : Campaign.row) ->
      String.equal r.Campaign.cls cls && String.equal r.Campaign.scheme scheme)
    rp.Campaign.rows

(* Acceptance: every PTE-key / RO-page / TLB tampering under a ROLoad
   scheme is detected by the ld.ro machinery itself — 100%, no Masked,
   no Silent. *)
let test_tamper_detected_under_roload () =
  let rp = Lazy.force small_report in
  List.iter
    (fun scheme ->
      List.iter
        (fun cls ->
          let rs = rows_of rp ~cls ~scheme in
          Alcotest.(check bool)
            (Printf.sprintf "%s cells exist under %s" cls scheme)
            true (rs <> []);
          List.iter
            (fun (r : Campaign.row) ->
              Alcotest.(check string)
                (Printf.sprintf "%s #%d under %s" cls r.Campaign.index scheme)
                "detected-roload"
                (match Campaign.verdict_of_row r with
                | Some v -> Fault.verdict_name v
                | None -> "failed"))
            rs)
        Campaign.tamper_classes)
    [ "VCall"; "ICall" ]

(* ... while the very same plan entries are consumed silently by the
   stock system and the label-CFI baseline (Masked: keys are ignored). *)
let test_tamper_masked_under_baselines () =
  let rp = Lazy.force small_report in
  List.iter
    (fun scheme ->
      List.iter
        (fun cls ->
          List.iter
            (fun (r : Campaign.row) ->
              Alcotest.(check bool)
                (Printf.sprintf "%s #%d masked under %s" cls r.Campaign.index scheme)
                true
                (Campaign.verdict_of_row r = Some Fault.Masked))
            (rows_of rp ~cls ~scheme))
        Campaign.tamper_classes)
    [ "none"; "CFI" ]

(* The paper's motivating gap: some pointer redirect corrupts output
   silently under stock and label-CFI, and never under a ROLoad scheme. *)
let test_silent_corruption_split () =
  let rp = Lazy.force small_report in
  let silent scheme =
    List.length
      (List.filter
         (fun (r : Campaign.row) ->
           String.equal r.Campaign.scheme scheme
           && Campaign.verdict_of_row r = Some Fault.Silent_corruption)
         rp.Campaign.rows)
  in
  Alcotest.(check bool) "stock suffers silent corruption" true (silent "none" >= 1);
  Alcotest.(check bool) "label CFI suffers silent corruption" true (silent "CFI" >= 1);
  let g = Campaign.gate rp in
  Alcotest.(check int) "zero silent under roload schemes" 0
    g.Campaign.silent_under_roload;
  Alcotest.(check int) "zero undetected tampering" 0 g.Campaign.undetected_tamper;
  Alcotest.(check int) "zero cell failures" 0 g.Campaign.cell_failures;
  Alcotest.(check bool) "oracle cross-check agreed" true
    ((not rp.Campaign.oracle_checked) || rp.Campaign.oracle_agreed)

(* Containment: a cell that keeps crashing becomes a structured failure
   row (with the attempt count) and the rest of the campaign completes. *)
let test_cell_failure_contained () =
  let cfg =
    {
      small_config with
      Campaign.count = 6;
      attempts = 2;
      sabotage =
        Some
          (fun ~index ~scheme:_ ~attempt:_ ->
            if index = 2 then failwith "sabotaged cell");
    }
  in
  let rp = Campaign.run cfg in
  let failed, ok =
    List.partition (fun (r : Campaign.row) -> r.Campaign.outcome = Campaign.Failed)
      rp.Campaign.rows
  in
  Alcotest.(check bool) "sabotaged cells failed" true (failed <> []);
  List.iter
    (fun (r : Campaign.row) ->
      Alcotest.(check int) "failure row names the sabotaged index" 2 r.Campaign.index;
      Alcotest.(check int) "retried the configured number of times" 2
        r.Campaign.attempts;
      Alcotest.(check bool) "error text preserved" true
        (String.length r.Campaign.detail > 0))
    failed;
  Alcotest.(check bool) "other cells completed" true (List.length ok > List.length failed)

(* Bounded retry: a cell that crashes only on its first attempt succeeds
   on the re-seeded second attempt and records attempts = 2. *)
let test_cell_retry_recovers () =
  let cfg =
    {
      small_config with
      Campaign.count = 4;
      attempts = 3;
      sabotage =
        Some
          (fun ~index ~scheme:_ ~attempt ->
            if index = 1 && attempt = 1 then failwith "flaky cell");
    }
  in
  let rp = Campaign.run cfg in
  let g = Campaign.gate rp in
  Alcotest.(check int) "no failure rows" 0 g.Campaign.cell_failures;
  let flaky =
    List.filter (fun (r : Campaign.row) -> r.Campaign.index = 1) rp.Campaign.rows
  in
  Alcotest.(check bool) "flaky cells exist" true (flaky <> []);
  List.iter
    (fun (r : Campaign.row) ->
      Alcotest.(check int) "second attempt succeeded" 2 r.Campaign.attempts)
    flaky

(* Checkpoint/resume: kill the campaign mid-run (max_cells), resume from
   the checkpoint, and require the rendered report byte-identical to an
   uninterrupted run. *)
let test_resume_byte_identical () =
  let ck = Filename.temp_file "roload-chaos" ".tsv" in
  let cfg =
    { small_config with Campaign.count = 8; seed = 7L; checkpoint = Some ck }
  in
  let partial =
    Campaign.run { cfg with Campaign.max_cells = Some 11 }
  in
  Alcotest.(check bool) "partial run stopped early" true
    (List.length partial.Campaign.rows = 11);
  let resumed = Campaign.run { cfg with Campaign.resume = true } in
  let fresh = Campaign.run { cfg with Campaign.checkpoint = None } in
  Sys.remove ck;
  Alcotest.(check string) "resumed report byte-identical to uninterrupted run"
    (Campaign.render fresh) (Campaign.render resumed);
  Alcotest.(check string) "resumed JSON byte-identical" (Campaign.to_json fresh)
    (Campaign.to_json resumed)

(* Campaign equivalence: the snapshot-seeded fan-out (the default) and
   the boot-every-cell-from-reset path must produce byte-identical
   reports — coverage table, rows, JSON and localization diffs — on the
   pinned seed.  This is the acceptance bar for snapshot seeding: only
   the throughput may change. *)
let test_snapshot_seeding_equivalence () =
  let cfg = { small_config with Campaign.seed = 1L; count = 10 } in
  let seeded = Campaign.run cfg in
  let reset = Campaign.run { cfg with Campaign.from_reset = true } in
  Alcotest.(check string) "rendered tables byte-identical" (Campaign.render reset)
    (Campaign.render seeded);
  Alcotest.(check string) "JSON byte-identical (incl. corruption diffs)"
    (Campaign.to_json reset) (Campaign.to_json seeded);
  Alcotest.(check string) "diff artifacts byte-identical"
    (Campaign.render_diffs reset) (Campaign.render_diffs seeded)

(* Checkpoint/resume under the snapshot fan-out is byte-identical at any
   job count: kill mid-run, resume at -j1 and at -j4, same JSON. *)
let test_resume_jobs_invariant () =
  let run jobs =
    let ck = Filename.temp_file "roload-chaos-j" ".tsv" in
    let cfg =
      {
        small_config with
        Campaign.count = 6;
        seed = 1L;
        jobs = Some jobs;
        checkpoint = Some ck;
      }
    in
    ignore (Campaign.run { cfg with Campaign.max_cells = Some 7 });
    let resumed = Campaign.run { cfg with Campaign.resume = true } in
    Sys.remove ck;
    Campaign.to_json resumed
  in
  Alcotest.(check string) "resumed snapshot fan-out: -j1 equals -j4" (run 1) (run 4)

(* A campaign is deterministic in the job count. *)
let test_jobs_invariant () =
  let cfg = { small_config with Campaign.count = 4; seed = 3L } in
  let j1 = Campaign.run { cfg with Campaign.jobs = Some 1 } in
  let j4 = Campaign.run { cfg with Campaign.jobs = Some 4 } in
  Alcotest.(check string) "-j1 equals -j4" (Campaign.render j1) (Campaign.render j4)

(* The empty-plan property: pausing at any point and resuming, with no
   injection applied, is bit-identical (status, output, cycles, full
   metrics) to an uninterrupted run — on both engines. *)
let test_empty_plan_bit_identity () =
  let schemes = [ Pass.Unprotected; Pass.Vcall; Pass.Icall ] in
  let exes = List.map (fun s -> (s, Campaign.compile_victim s)) schemes in
  let budget = 10_000_000L in
  let check engine (scheme, exe) permille =
    let plain, pm = Campaign.measure ~engine ~max_instructions:budget exe in
    let pause_at =
      Int64.div (Int64.mul plain.Kernel.instructions (Int64.of_int permille)) 1000L
    in
    let paused, qm =
      Campaign.measure ~engine ~max_instructions:budget ~pause_at exe
    in
    Alcotest.(check string)
      (Printf.sprintf "output (%s, %d permille)" (Pass.scheme_name scheme) permille)
      plain.Kernel.output paused.Kernel.output;
    Alcotest.(check bool) "status" true (plain.Kernel.status = paused.Kernel.status);
    Alcotest.(check int64) "cycles" plain.Kernel.cycles paused.Kernel.cycles;
    Alcotest.(check bool) "metrics" true (Metrics.core_equal pm qm)
  in
  List.iter
    (fun engine ->
      List.iter
        (fun se -> List.iter (check engine se) [ 1; 137; 500; 999 ])
        exes)
    [ Machine.Single_step; Machine.Block_cached ]

(* qcheck flavor of the same property: arbitrary pause points. *)
let prop_pause_identity =
  let exe = lazy (Campaign.compile_victim Pass.Vcall) in
  QCheck.Test.make ~name:"pause/resume at any point is bit-identical" ~count:25
    QCheck.(pair (int_range 1 999) bool)
    (fun (permille, block) ->
      let exe = Lazy.force exe in
      let engine = if block then Machine.Block_cached else Machine.Single_step in
      let budget = 10_000_000L in
      let plain, pm = Campaign.measure ~engine ~max_instructions:budget exe in
      let pause_at =
        let t =
          Int64.div (Int64.mul plain.Kernel.instructions (Int64.of_int permille)) 1000L
        in
        if Int64.compare t 1L < 0 then 1L else t
      in
      let paused, qm = Campaign.measure ~engine ~max_instructions:budget ~pause_at exe in
      plain.Kernel.status = paused.Kernel.status
      && String.equal plain.Kernel.output paused.Kernel.output
      && Int64.equal plain.Kernel.cycles paused.Kernel.cycles
      && Metrics.core_equal pm qm)

(* Fuel exhaustion: an infinite loop hits the cumulative instruction
   budget and surfaces as the distinct Running ("fuel exhausted")
   outcome — on both engines — rather than hanging or crashing. *)
let test_fuel_exhaustion () =
  let source = "int main() { int i = 0; while (i < 2) { i = i - i; } return 0; }" in
  let exe =
    Core.Toolchain.compile_exe ~name:"chaos-spin" source
  in
  List.iter
    (fun engine ->
      let m =
        System.run ~engine ~max_instructions:50_000L
          ~variant:System.Processor_kernel_modified exe
      in
      (match m.System.status with
      | Process.Running -> ()
      | _ -> Alcotest.fail "expected the watchdog to report fuel exhaustion");
      Alcotest.(check bool) "ran exactly to the budget" true
        (Int64.compare m.System.instructions 50_000L >= 0);
      Alcotest.(check string) "distinct status string" "running (instruction limit hit)"
        (System.status_string m))
    [ Machine.Single_step; Machine.Block_cached ];
  (* and the campaign classifies a still-running cell as divergent, not
     as detection *)
  let baseline =
    { Kernel.status = Process.Exited 0; instructions = 1000L; cycles = 1000L;
      peak_kib = 0; output = "x\n" }
  in
  let hung = { baseline with Kernel.status = Process.Running } in
  Alcotest.(check string) "watchdog verdict" "divergent-output"
    (Fault.verdict_name (fst (Campaign.classify ~baseline hung)))

(* Plans are seeded and prefix-stable. *)
let test_plan_determinism () =
  let a = Plan.build ~seed:42L ~count:30 in
  let b = Plan.build ~seed:42L ~count:30 in
  Alcotest.(check bool) "equal seeds, equal plans" true (a = b);
  let prefix = Plan.build ~seed:42L ~count:10 in
  Alcotest.(check bool) "shorter plan is a prefix" true
    (prefix = List.filteri (fun i _ -> i < 10) a);
  let c = Plan.build ~seed:43L ~count:30 in
  Alcotest.(check bool) "different seeds differ" true (a <> c)

(* Every pinned reproducer in corpus/ must still replay to its recorded
   verdicts. *)
let corpus_dir = "../corpus"

let test_corpus_replay () =
  let entries =
    if Sys.file_exists corpus_dir then
      Sys.readdir corpus_dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".chaos")
      |> List.sort compare
    else []
  in
  Alcotest.(check bool) "chaos corpus present" true (List.length entries >= 2);
  List.iter
    (fun entry ->
      let checks = Campaign.replay ~path:(Filename.concat corpus_dir entry) in
      List.iter
        (fun (c : Campaign.replay_check) ->
          Alcotest.(check string)
            (Printf.sprintf "%s: %s" entry c.Campaign.rc_scheme)
            c.Campaign.rc_expected c.Campaign.rc_actual)
        checks)
    entries

let suite =
  [
    Alcotest.test_case "tampering detected 100% under roload" `Slow
      test_tamper_detected_under_roload;
    Alcotest.test_case "tampering masked under baselines" `Slow
      test_tamper_masked_under_baselines;
    Alcotest.test_case "silent corruption only under baselines" `Slow
      test_silent_corruption_split;
    Alcotest.test_case "cell failure contained" `Quick test_cell_failure_contained;
    Alcotest.test_case "bounded retry recovers flaky cell" `Quick
      test_cell_retry_recovers;
    Alcotest.test_case "resume is byte-identical" `Slow test_resume_byte_identical;
    Alcotest.test_case "snapshot-seeded equals from-reset" `Slow
      test_snapshot_seeding_equivalence;
    Alcotest.test_case "resume fan-out: -j1 equals -j4" `Slow test_resume_jobs_invariant;
    Alcotest.test_case "-j1 equals -j4" `Quick test_jobs_invariant;
    Alcotest.test_case "empty plan is bit-identical" `Quick test_empty_plan_bit_identity;
    Seeded.to_alcotest prop_pause_identity;
    Alcotest.test_case "fuel exhaustion is a distinct outcome" `Quick
      test_fuel_exhaustion;
    Alcotest.test_case "plans are seeded and prefix-stable" `Quick
      test_plan_determinism;
    Alcotest.test_case "corpus reproducers replay" `Slow test_corpus_replay;
  ]
