(* Cache-model tests: geometry, hit/miss behaviour, LRU, write-backs. *)

module Cache = Roload_cache.Cache
module Hierarchy = Roload_cache.Hierarchy

let mk ?(size = 1024) ?(ways = 2) ?(line = 64) () =
  Cache.create ~name:"t" { Cache.size_bytes = size; ways; line_bytes = line }

let test_geometry_validation () =
  Alcotest.check_raises "non-pow2 line"
    (Invalid_argument "Cache.create: line size must be a power of two") (fun () ->
      ignore (Cache.create ~name:"x" { Cache.size_bytes = 1024; ways = 2; line_bytes = 48 }))

let test_hit_miss () =
  let c = mk () in
  (match Cache.access c ~addr:0 ~write:false with
  | Cache.Miss _ -> ()
  | Cache.Hit -> Alcotest.fail "cold access must miss");
  (match Cache.access c ~addr:32 ~write:false with
  | Cache.Hit -> ()
  | Cache.Miss _ -> Alcotest.fail "same line must hit");
  match Cache.access c ~addr:64 ~write:false with
  | Cache.Miss _ -> ()
  | Cache.Hit -> Alcotest.fail "next line must miss"

let test_lru_within_set () =
  (* 1024 B, 2-way, 64 B lines -> 8 sets; addresses with the same index
     bits land in the same set every 512 bytes *)
  let c = mk () in
  ignore (Cache.access c ~addr:0 ~write:false);
  ignore (Cache.access c ~addr:512 ~write:false);
  (* touch 0 so 512 is the LRU way *)
  ignore (Cache.access c ~addr:0 ~write:false);
  ignore (Cache.access c ~addr:1024 ~write:false);
  (* now 0 must still hit, 512 must miss *)
  (match Cache.access c ~addr:0 ~write:false with
  | Cache.Hit -> ()
  | Cache.Miss _ -> Alcotest.fail "MRU way evicted");
  match Cache.access c ~addr:512 ~write:false with
  | Cache.Miss _ -> ()
  | Cache.Hit -> Alcotest.fail "LRU way survived"

let test_writeback () =
  let c = mk () in
  ignore (Cache.access c ~addr:0 ~write:true);
  ignore (Cache.access c ~addr:512 ~write:false);
  (* evicting the dirty line must report a write-back *)
  match Cache.access c ~addr:1024 ~write:false with
  | Cache.Miss { writeback = true } -> ()
  | Cache.Miss { writeback = false } -> Alcotest.fail "dirty eviction must write back"
  | Cache.Hit -> Alcotest.fail "expected miss"

let test_stats_and_flush () =
  let c = mk () in
  ignore (Cache.access c ~addr:0 ~write:false);
  ignore (Cache.access c ~addr:0 ~write:false);
  let st = Cache.stats c in
  Alcotest.(check int) "hits" 1 st.Cache.hits;
  Alcotest.(check int) "misses" 1 st.Cache.misses;
  Alcotest.(check (float 0.001)) "miss rate" 0.5 (Cache.miss_rate c);
  Cache.flush c;
  match Cache.access c ~addr:0 ~write:false with
  | Cache.Miss _ -> ()
  | Cache.Hit -> Alcotest.fail "flush must empty the cache"

let test_hierarchy_costs () =
  let h = Hierarchy.create () in
  let miss_cost = Hierarchy.access_data h ~pa:0 ~write:false in
  let hit_cost = Hierarchy.access_data h ~pa:0 ~write:false in
  Alcotest.(check bool) "miss costs more" true (miss_cost > hit_cost);
  Alcotest.(check int) "hit = l1 latency" Hierarchy.default_latencies.Hierarchy.l1_hit hit_cost;
  let f1 = Hierarchy.access_ifetch h ~pa:4096 in
  let f2 = Hierarchy.access_ifetch h ~pa:4096 in
  Alcotest.(check bool) "ifetch miss positive" true (f1 > 0);
  Alcotest.(check int) "ifetch hit free" 0 f2

(* properties *)
let prop_counters_consistent =
  QCheck.Test.make ~count:200 ~name:"hits + misses = accesses"
    QCheck.(small_list (pair (int_bound 8191) bool))
    (fun accesses ->
      let c = mk () in
      List.iter (fun (addr, write) -> ignore (Cache.access c ~addr ~write)) accesses;
      let st = Cache.stats c in
      st.Cache.hits + st.Cache.misses = List.length accesses)

let prop_repeat_hits =
  QCheck.Test.make ~count:200 ~name:"immediate re-access of any address hits"
    QCheck.(int_bound 100_000)
    (fun addr ->
      let c = mk () in
      ignore (Cache.access c ~addr ~write:false);
      match Cache.access c ~addr ~write:false with
      | Cache.Hit -> true
      | Cache.Miss _ -> false)

let prop_deterministic =
  QCheck.Test.make ~count:100 ~name:"replaying a trace gives identical stats"
    QCheck.(small_list (pair (int_bound 65535) bool))
    (fun trace ->
      let run () =
        let c = mk () in
        List.iter (fun (addr, write) -> ignore (Cache.access c ~addr ~write)) trace;
        let st = Cache.stats c in
        (st.Cache.hits, st.Cache.misses, st.Cache.writebacks)
      in
      run () = run ())

(* property: [Cache.rehit]'s documented contract — replaying a read hit
   through a captured handle, with a full [access] as the fallback on
   refusal, is observably identical to always calling [access]: same
   hit/miss/writeback counters and the same LRU state afterwards.  The
   trace is drawn from a small address window (two sets' worth of
   conflicting lines) so handles regularly go stale through eviction. *)
let prop_rehit_exact_accounting =
  let arb =
    QCheck.make
      ~print:(fun (before, addr, between) ->
        Printf.sprintf "[%s] addr=%d [%s]"
          (String.concat ";" (List.map (fun (a, w) -> Printf.sprintf "%d%s" a (if w then "w" else "r")) before))
          addr
          (String.concat ";" (List.map (fun (a, w) -> Printf.sprintf "%d%s" a (if w then "w" else "r")) between)))
      QCheck.Gen.(
        triple
          (list_size (int_bound 24) (pair (int_bound 4095) bool))
          (int_bound 4095)
          (list_size (int_bound 24) (pair (int_bound 4095) bool)))
  in
  QCheck.Test.make ~count:300 ~name:"Cache.rehit = access (accounting, LRU, fallback)" arb
    (fun (before, addr, between) ->
      let a = mk () in
      let b = mk () in
      let replay (ad, w) =
        ignore (Cache.access a ~addr:ad ~write:w);
        ignore (Cache.access b ~addr:ad ~write:w)
      in
      List.iter replay before;
      (* capture the handle with identical accounting on both caches *)
      let _, handle = Cache.access_handle a ~addr ~write:false in
      ignore (Cache.access b ~addr ~write:false);
      List.iter replay between;
      let oa =
        if Cache.rehit a handle then Cache.Hit
        else Cache.access a ~addr ~write:false
      in
      let ob = Cache.access b ~addr ~write:false in
      let stats_eq () =
        let sa = Cache.stats a and sb = Cache.stats b in
        sa.Cache.hits = sb.Cache.hits && sa.Cache.misses = sb.Cache.misses
        && sa.Cache.writebacks = sb.Cache.writebacks
      in
      oa = ob
      && stats_eq ()
      (* same LRU state: a conflict-heavy tail behaves identically *)
      && List.for_all
           (fun (ad, w) ->
             Cache.access a ~addr:ad ~write:w = Cache.access b ~addr:ad ~write:w
             && stats_eq ())
           [ (addr, false); (addr + 512, true); (addr + 1024, false);
             (addr, false); (addr + 1536, true); (addr + 512, false) ])

let suite =
  [
    Alcotest.test_case "geometry validation" `Quick test_geometry_validation;
    Alcotest.test_case "hit/miss" `Quick test_hit_miss;
    Alcotest.test_case "lru within a set" `Quick test_lru_within_set;
    Alcotest.test_case "write-back on dirty eviction" `Quick test_writeback;
    Alcotest.test_case "stats and flush" `Quick test_stats_and_flush;
    Alcotest.test_case "hierarchy costs" `Quick test_hierarchy_costs;
    Seeded.to_alcotest prop_counters_consistent;
    Seeded.to_alcotest prop_repeat_hits;
    Seeded.to_alcotest prop_deterministic;
    Seeded.to_alcotest prop_rehit_exact_accounting;
  ]
