(* Hardening-pass tests on the IR level: key assignment, section moves,
   GFPT construction, metadata annotation, CFI label consistency. *)

module Ir = Roload_ir.Ir
module Pass = Roload_passes.Pass
module Keys = Roload_passes.Keys
module Parser = Roload_front.Parser
module Lower = Roload_front.Lower

let lower src = Lower.lower (Parser.parse src) ~module_name:"t"

let class_src = {|
class Animal {
  int weight;
  virtual int noise() { return 1; }
};
class Dog : Animal {
  virtual int noise() { return 2; }
};
class Tool {
  int size;
  virtual int use() { return 3; }
};
int main() {
  Animal *a = (Animal*)(new Dog);
  Tool *t = new Tool;
  return a->noise() + t->use();
}
|}

let fptr_src = {|
typedef int (*cb_t)(int);
int f(int x) { return x; }
int g(int x) { return x + 1; }
cb_t table[2] = { f, g };
int main() {
  cb_t h = f;
  return h(1) + table[1](2);
}
|}

(* projections that survive the inline records *)
let vcall_mds m =
  List.concat_map
    (fun f ->
      List.concat_map
        (fun b ->
          List.filter_map
            (function
              | Ir.Vcall { md; _ } -> Some md
              | Ir.Bin _ | Ir.Load _ | Ir.Store _ | Ir.Lea_frame _ | Ir.Call _
              | Ir.Call_indirect _ ->
                None)
            b.Ir.b_instrs)
        f.Ir.f_blocks)
    m.Ir.m_funcs

let icall_mds m =
  List.concat_map
    (fun f ->
      List.concat_map
        (fun b ->
          List.filter_map
            (function
              | Ir.Call_indirect { md; _ } -> Some md
              | Ir.Bin _ | Ir.Load _ | Ir.Store _ | Ir.Lea_frame _ | Ir.Call _
              | Ir.Vcall _ ->
                None)
            b.Ir.b_instrs)
        f.Ir.f_blocks)
    m.Ir.m_funcs

let vt_section m cls = (Option.get (Ir.find_global m ("__vt$" ^ cls))).Ir.g_section

let test_vcall_pass () =
  let m = lower class_src in
  let report = Pass.apply Pass.Vcall m in
  Alcotest.(check int) "3 vtables rekeyed" 3
    (List.assoc "vtables rekeyed" report.Pass.annotations);
  Alcotest.(check int) "2 hierarchy keys" 2
    (List.assoc "hierarchy keys" report.Pass.annotations);
  Roload_ir.Verify.check_module_exn m;
  Alcotest.(check string) "Dog shares Animal's key" (vt_section m "Animal") (vt_section m "Dog");
  Alcotest.(check bool) "Tool gets its own key" true
    (vt_section m "Tool" <> vt_section m "Animal");
  List.iter
    (fun (md : Ir.vcall_md) ->
      Alcotest.(check bool) "vcall annotated" true (md.Ir.vc_roload_key <> None);
      Alcotest.(check bool) "no vtint mixed in" false md.Ir.vc_vtint)
    (vcall_mds m);
  Alcotest.(check bool) "some vcalls present" true (vcall_mds m <> [])

let test_icall_pass () =
  let m = lower fptr_src in
  let report = Pass.apply Pass.Icall m in
  Roload_ir.Verify.check_module_exn m;
  Alcotest.(check int) "2 gfpt entries" 2 (List.assoc "gfpt entries" report.Pass.annotations);
  Alcotest.(check int) "1 type key" 1 (List.assoc "type keys" report.Pass.annotations);
  (* no Func_addr values survive in instruction operands: the printed IR
     renders them as "&name" *)
  let func_addr_left =
    List.exists
      (fun f ->
        List.exists
          (fun b ->
            List.exists
              (fun i ->
                let s = Ir.instr_to_string i in
                let rec has i0 =
                  i0 + 1 < String.length s
                  && ((s.[i0] = '&' && s.[i0 + 1] <> '&') || has (i0 + 1))
                in
                has 0)
              b.Ir.b_instrs)
          f.Ir.f_blocks)
      m.Ir.m_funcs
  in
  Alcotest.(check bool) "func addrs rewritten" false func_addr_left;
  (* the global fptr table now references GFPT slots, not functions *)
  (match Ir.find_global m "table" with
  | Some g ->
    List.iter
      (function
        | Ir.G_global gg ->
          Alcotest.(check bool) "points at gfpt" true
            (String.length gg > 7 && String.sub gg 0 7 = "__gfpt$")
        | Ir.G_func _ -> Alcotest.fail "raw function address left in table"
        | Ir.G_int _ -> ())
      g.Ir.g_init
  | None -> Alcotest.fail "table missing");
  (* icall metadata set *)
  List.iter
    (fun (md : Ir.icall_md) ->
      Alcotest.(check bool) "icall annotated" true (md.Ir.ic_roload_key <> None))
    (icall_mds m);
  Alcotest.(check int) "two icalls" 2 (List.length (icall_mds m))

let test_icall_unified_vtable_key () =
  let m = lower class_src in
  let _ = Pass.apply Pass.Icall m in
  let expected = Keys.keyed_rodata_section Roload_isa.Roload_ext.key_vtable_unified in
  List.iter
    (fun cls -> Alcotest.(check string) (cls ^ " unified") expected (vt_section m cls))
    [ "Animal"; "Dog"; "Tool" ];
  List.iter
    (fun (md : Ir.vcall_md) ->
      Alcotest.(check bool) "unified key" true
        (md.Ir.vc_roload_key = Some Roload_isa.Roload_ext.key_vtable_unified))
    (vcall_mds m)

let test_vtint_pass () =
  let m = lower class_src in
  let report = Pass.apply Pass.Vtint_baseline m in
  Alcotest.(check int) "2 vcalls checked" 2
    (List.assoc "vcalls range-checked" report.Pass.annotations);
  List.iter
    (fun (md : Ir.vcall_md) ->
      Alcotest.(check bool) "vtint set" true md.Ir.vc_vtint;
      Alcotest.(check bool) "no roload key" true (md.Ir.vc_roload_key = None))
    (vcall_mds m);
  (* vtables stay in plain .rodata *)
  Alcotest.(check string) "rodata" ".rodata" (vt_section m "Animal")

let test_cfi_pass_labels () =
  let m = lower class_src in
  let report = Pass.apply Pass.Cfi_baseline m in
  Alcotest.(check int) "2 vcalls checked" 2
    (List.assoc "vcalls checked" report.Pass.annotations);
  (* overriding methods share the slot label with the base *)
  let id name = (Option.get (Ir.find_func m name)).Ir.f_cfi_id in
  Alcotest.(check bool) "Animal$noise labelled" true (id "Animal$noise" <> None);
  Alcotest.(check bool) "override shares label" true (id "Animal$noise" = id "Dog$noise");
  Alcotest.(check bool) "other hierarchy differs" true (id "Tool$use" <> id "Animal$noise");
  (* non-address-taken plain functions stay unlabelled *)
  Alcotest.(check bool) "main unlabelled" true (id "main" = None)

let test_cfi_icall_labels_by_type () =
  let m = lower fptr_src in
  let _ = Pass.apply Pass.Cfi_baseline m in
  let id name = (Option.get (Ir.find_func m name)).Ir.f_cfi_id in
  Alcotest.(check bool) "f labelled" true (id "f" <> None);
  Alcotest.(check bool) "same type same label" true (id "f" = id "g");
  List.iter
    (fun (md : Ir.icall_md) ->
      Alcotest.(check bool) "check label = target label" true
        (md.Ir.ic_cfi_label = id "f"))
    (icall_mds m)

let test_unprotected_is_identity () =
  let m = lower class_src in
  let before = Ir.modul_to_string m in
  let _ = Pass.apply Pass.Unprotected m in
  Alcotest.(check string) "unchanged" before (Ir.modul_to_string m)

let test_key_allocator () =
  let a = Keys.create () in
  let k1 = Keys.key_for a "alpha" in
  let k2 = Keys.key_for a "beta" in
  Alcotest.(check bool) "distinct" true (k1 <> k2);
  Alcotest.(check int) "memoized" k1 (Keys.key_for a "alpha");
  Alcotest.(check bool) "starts past reserved keys" true
    (k1 >= Roload_isa.Roload_ext.first_type_key);
  Alcotest.(check int) "count" 2 (Keys.count a)

let test_key_allocator_exhaustion () =
  let a = Keys.create () in
  let first = Roload_isa.Roload_ext.first_type_key in
  let last = Roload_isa.Roload_ext.key_return_sites - 1 in
  for i = first to last do
    let k = Keys.key_for a (Printf.sprintf "type%d" i) in
    Alcotest.(check int) "keys are dense" i k
  done;
  let n = last - first + 1 in
  Alcotest.(check int) "count at capacity" n (Keys.count a);
  (* memoized lookups at capacity must still succeed, not raise *)
  Alcotest.(check int) "memoized at capacity" first (Keys.key_for a "type2");
  Alcotest.(check int) "count unchanged by lookups" n (Keys.count a);
  Alcotest.(check int) "assignments match count" n
    (List.length (Keys.assignments a));
  (match Keys.key_for a "one-too-many" with
  | _ -> Alcotest.fail "expected Failure past the 10-bit key space"
  | exception Failure msg ->
    Alcotest.(check bool) "message names the allocator" true
      (String.length msg >= 5 && String.sub msg 0 5 = "Keys:"));
  (* the failed request must not have corrupted the allocator *)
  Alcotest.(check int) "count unchanged by failure" n (Keys.count a)

(* ---------- optimizer ---------- *)

let test_constfold () =
  let m = lower "int main() { int a = 2 + 3 * 4; if (1) { return a; } return 0; }" in
  let s = Roload_passes.Constfold.run m in
  Alcotest.(check bool) "folded something" true (s.Roload_passes.Constfold.folded > 0);
  Alcotest.(check bool) "resolved the constant branch" true
    (s.Roload_passes.Constfold.branches_resolved > 0);
  Roload_ir.Verify.check_module_exn m

let test_dce_removes_dead () =
  let m =
    lower
      {|
int main() {
  int dead = 12345 * 99;   // never used
  int live = 7;
  return live;
}
|}
  in
  let _ = Roload_passes.Constfold.run m in
  let s = Roload_passes.Dce.run m in
  Alcotest.(check bool) "instructions removed" true (s.Roload_passes.Dce.instrs_removed > 0);
  Roload_ir.Verify.check_module_exn m

let test_dce_removes_unreachable_blocks () =
  (* lowering after `return` produces a dead block *)
  let m = lower "int main() { return 1; }" in
  let s = Roload_passes.Dce.run m in
  Alcotest.(check bool) "dead block removed" true (s.Roload_passes.Dce.blocks_removed > 0)

let test_optimizer_preserves_semantics () =
  let src =
    {|
int work(int n) {
  int acc = 0;
  int i;
  for (i = 0; i < n; i = i + 1) {
    int tmp = (3 * 4 + i) % 7;
    int unused = i * i + 42;
    acc = acc + tmp;
  }
  return acc;
}
int main() { print_int(work(50)); print_char('\n'); return 0; }
|}
  in
  let run optimize =
    let options = { Core.Toolchain.default_options with optimize } in
    let exe = Core.Toolchain.compile_exe ~options ~name:"t" src in
    (Core.System.run ~variant:Core.System.Processor_kernel_modified exe).Core.System.output
  in
  Alcotest.(check string) "same output" (run false) (run true)

let test_optimizer_shrinks_work () =
  let src = "int main() { int a = 1 + 2 + 3 + 4 + 5; return a * 0; }" in
  let run optimize =
    let options = { Core.Toolchain.default_options with optimize } in
    let exe = Core.Toolchain.compile_exe ~options ~name:"t" src in
    (Core.System.run ~variant:Core.System.Processor_kernel_modified exe).Core.System.instructions
  in
  Alcotest.(check bool) "fewer instructions" true (Int64.compare (run true) (run false) < 0)

let test_scheme_names () =
  List.iter
    (fun s ->
      match Pass.scheme_of_string (Pass.scheme_name s) with
      | Some s2 -> Alcotest.(check bool) "roundtrip" true (s = s2)
      | None -> Alcotest.fail "scheme name roundtrip")
    Pass.all_schemes

let suite =
  [
    Alcotest.test_case "vcall pass (per-hierarchy keys)" `Quick test_vcall_pass;
    Alcotest.test_case "icall pass (gfpt + rewriting)" `Quick test_icall_pass;
    Alcotest.test_case "icall unified vtable key" `Quick test_icall_unified_vtable_key;
    Alcotest.test_case "vtint pass" `Quick test_vtint_pass;
    Alcotest.test_case "cfi labels per hierarchy slot" `Quick test_cfi_pass_labels;
    Alcotest.test_case "cfi labels per type" `Quick test_cfi_icall_labels_by_type;
    Alcotest.test_case "unprotected is identity" `Quick test_unprotected_is_identity;
    Alcotest.test_case "constant folding" `Quick test_constfold;
    Alcotest.test_case "dce removes dead code" `Quick test_dce_removes_dead;
    Alcotest.test_case "dce removes unreachable blocks" `Quick test_dce_removes_unreachable_blocks;
    Alcotest.test_case "optimizer preserves semantics" `Quick test_optimizer_preserves_semantics;
    Alcotest.test_case "optimizer shrinks work" `Quick test_optimizer_shrinks_work;
    Alcotest.test_case "key allocator" `Quick test_key_allocator;
    Alcotest.test_case "key allocator exhaustion" `Quick test_key_allocator_exhaustion;
    Alcotest.test_case "scheme names roundtrip" `Quick test_scheme_names;
  ]
