(* Memory-subsystem tests: physical memory, PTEs (key field), the Sv39
   walker, the TLB, and the MMU's ROLoad condition. *)

module Phys_mem = Roload_mem.Phys_mem
module Perm = Roload_mem.Perm
module Pte = Roload_mem.Pte
module Page_table = Roload_mem.Page_table
module Tlb = Roload_mem.Tlb
module Mmu = Roload_mem.Mmu

let page = Page_table.page_size

let make_env () =
  let mem = Phys_mem.create ~size:(4 * 1024 * 1024) in
  let next = ref 1 in
  let alloc_frame () =
    let f = !next in
    incr next;
    Phys_mem.fill mem ~addr:(f * page) ~len:page '\000';
    f
  in
  let pt = Page_table.create ~mem ~alloc_frame in
  (mem, pt)

let test_phys_mem () =
  let mem = Phys_mem.create ~size:65536 in
  Phys_mem.write_u64 mem 128 0x1122334455667788L;
  Alcotest.(check int64) "u64 rt" 0x1122334455667788L (Phys_mem.read_u64 mem 128);
  Alcotest.(check int) "byte LE" 0x88 (Phys_mem.read_u8 mem 128);
  Alcotest.(check int) "u16 LE" 0x7788 (Phys_mem.read_u16 mem 128);
  Phys_mem.write_string mem ~addr:1000 "hello";
  Alcotest.(check string) "string rt" "hello" (Phys_mem.read_string mem ~addr:1000 ~len:5);
  Alcotest.check_raises "oob" (Phys_mem.Out_of_range 65536) (fun () ->
      ignore (Phys_mem.read_u8 mem 65536))

let test_pte_fields () =
  let pte = Pte.make ~ppn:0x1234 ~perms:Perm.ro ~user:true ~key:777 in
  Alcotest.(check bool) "valid" true (Pte.valid pte);
  Alcotest.(check bool) "leaf" true (Pte.is_leaf pte);
  Alcotest.(check bool) "readable" true (Pte.readable pte);
  Alcotest.(check bool) "not writable" false (Pte.writable pte);
  Alcotest.(check int) "ppn" 0x1234 (Pte.ppn pte);
  Alcotest.(check int) "key" 777 (Pte.key pte);
  let pte2 = Pte.with_key pte 42 in
  Alcotest.(check int) "with_key" 42 (Pte.key pte2);
  Alcotest.(check int) "ppn preserved" 0x1234 (Pte.ppn pte2);
  let table = Pte.make_table ~ppn:9 in
  Alcotest.(check bool) "table not leaf" false (Pte.is_leaf table)

(* the key lives in the reserved top-10 PTE bits (paper §III-A) *)
let test_pte_key_position () =
  let pte = Pte.make ~ppn:1 ~perms:Perm.ro ~user:true ~key:0x3FF in
  let raw = Pte.to_int64 pte in
  Alcotest.(check int64) "top 10 bits" 0x3FFL (Int64.shift_right_logical raw 54)

let test_walk_and_map () =
  let _mem, pt = make_env () in
  let va = 0x40000000 in
  Page_table.map_page pt ~va ~ppn:0x55 ~perms:Perm.rw ~user:true ~key:3;
  (match Page_table.walk pt va with
  | Ok { pte; steps; level; _ } ->
    Alcotest.(check int) "ppn" 0x55 (Pte.ppn pte);
    Alcotest.(check int) "key" 3 (Pte.key pte);
    Alcotest.(check int) "leaf level" 0 level;
    Alcotest.(check int) "3-level walk" 3 steps
  | Error _ -> Alcotest.fail "expected mapping");
  (match Page_table.walk pt (va + page) with
  | Error Page_table.Not_mapped -> ()
  | Error Page_table.Bad_alignment | Ok _ -> Alcotest.fail "next page must be unmapped");
  Alcotest.(check int) "translate" ((0x55 * page) lor 0x123)
    (Page_table.translate_exn pt (va lor 0x123));
  Alcotest.(check int) "mapped pages" 1 (Page_table.mapped_pages pt);
  Page_table.unmap_page pt ~va;
  match Page_table.walk pt va with
  | Error Page_table.Not_mapped -> ()
  | Error Page_table.Bad_alignment | Ok _ -> Alcotest.fail "unmap failed"

let test_set_key_and_perms () =
  let _mem, pt = make_env () in
  let va = 0x10000 in
  Page_table.map_page pt ~va ~ppn:2 ~perms:Perm.rw ~user:true ~key:0;
  (match Page_table.set_key pt ~va ~key:99 with Ok () -> () | Error _ -> Alcotest.fail "set_key");
  (match Page_table.set_perms pt ~va ~perms:Perm.ro with Ok () -> () | Error _ -> Alcotest.fail "set_perms");
  match Page_table.walk pt va with
  | Ok { pte; _ } ->
    Alcotest.(check int) "new key" 99 (Pte.key pte);
    Alcotest.(check bool) "now read-only" false (Pte.writable pte)
  | Error _ -> Alcotest.fail "walk"

let test_tlb_lru () =
  let tlb = Tlb.create ~name:"test" ~entries:2 in
  let p n = Pte.make ~ppn:n ~perms:Perm.rw ~user:true ~key:0 in
  Tlb.insert tlb ~vpn:1 ~pte:(p 1);
  Tlb.insert tlb ~vpn:2 ~pte:(p 2);
  Alcotest.(check bool) "hit 1" true (Tlb.lookup tlb 1 <> None);
  (* inserting a third entry must evict vpn 2 (least recently used) *)
  Tlb.insert tlb ~vpn:3 ~pte:(p 3);
  Alcotest.(check bool) "1 survives" true (Tlb.lookup tlb 1 <> None);
  Alcotest.(check bool) "2 evicted" true (Tlb.lookup tlb 2 = None);
  Alcotest.(check bool) "3 present" true (Tlb.lookup tlb 3 <> None);
  let st = Tlb.stats tlb in
  Alcotest.(check int) "misses counted" 1 st.Tlb.misses;
  Tlb.invalidate tlb ~vpn:3;
  Alcotest.(check bool) "3 invalidated" true (Tlb.lookup tlb 3 = None);
  Tlb.flush tlb;
  Alcotest.(check int) "flushed empty" 0 (Tlb.occupancy tlb)

let make_mmu ?(roload = true) pt =
  Mmu.create ~page_table:pt ~itlb_entries:4 ~dtlb_entries:4 ~roload_check_enabled:roload

let test_mmu_basic () =
  let _mem, pt = make_env () in
  let va = 0x20000 in
  Page_table.map_page pt ~va ~ppn:7 ~perms:Perm.rw ~user:true ~key:0;
  let mmu = make_mmu pt in
  (match Mmu.translate mmu ~access:Perm.Load va with
  | Ok { pa; tlb_hit; walk_steps } ->
    Alcotest.(check int) "pa" (7 * page) pa;
    Alcotest.(check bool) "first is miss" false tlb_hit;
    Alcotest.(check int) "walk steps" 3 walk_steps
  | Error f -> Alcotest.fail (Mmu.fault_to_string f));
  (match Mmu.translate mmu ~access:Perm.Load va with
  | Ok { tlb_hit; walk_steps; _ } ->
    Alcotest.(check bool) "second is hit" true tlb_hit;
    Alcotest.(check int) "no walk" 0 walk_steps
  | Error f -> Alcotest.fail (Mmu.fault_to_string f));
  (* store allowed on rw, fetch denied *)
  (match Mmu.translate mmu ~access:Perm.Store va with
  | Ok _ -> ()
  | Error f -> Alcotest.fail (Mmu.fault_to_string f));
  match Mmu.translate mmu ~access:Perm.Fetch va with
  | Error (Mmu.Page_fault _) -> ()
  | Error (Mmu.Roload_fault _) | Ok _ -> Alcotest.fail "fetch of rw page must fault"

let test_mmu_roload_conditions () =
  let _mem, pt = make_env () in
  let ro_keyed = 0x30000 and ro_plain = 0x31000 and rw = 0x32000 and rx = 0x33000 in
  Page_table.map_page pt ~va:ro_keyed ~ppn:3 ~perms:Perm.ro ~user:true ~key:7;
  Page_table.map_page pt ~va:ro_plain ~ppn:4 ~perms:Perm.ro ~user:true ~key:0;
  Page_table.map_page pt ~va:rw ~ppn:5 ~perms:Perm.rw ~user:true ~key:7;
  Page_table.map_page pt ~va:rx ~ppn:6 ~perms:Perm.rx ~user:true ~key:7;
  let mmu = make_mmu pt in
  let roload key va = Mmu.translate mmu ~access:(Perm.Roload key) va in
  (* matching key on a read-only page: allowed *)
  (match roload 7 ro_keyed with Ok _ -> () | Error f -> Alcotest.fail (Mmu.fault_to_string f));
  (* wrong key: the new fault class, carrying triage detail *)
  (match roload 9 ro_keyed with
  | Error (Mmu.Roload_fault { key_requested = 9; page_key = 7; _ }) -> ()
  | _ -> Alcotest.fail "wrong key must raise a ROLoad fault");
  (* key 0 page with key-0 request: allowed (default rodata) *)
  (match roload 0 ro_plain with Ok _ -> () | Error f -> Alcotest.fail (Mmu.fault_to_string f));
  (* writable page: denied even with a matching key *)
  (match roload 7 rw with
  | Error (Mmu.Roload_fault { page_perms; _ }) ->
    Alcotest.(check bool) "writable" true page_perms.Perm.w
  | _ -> Alcotest.fail "writable pointee must fault");
  (* executable page: denied (the separate-code motivation) *)
  (match roload 7 rx with
  | Error (Mmu.Roload_fault _) -> ()
  | _ -> Alcotest.fail "executable page must fault");
  (* an ordinary load of the same pages is fine *)
  match Mmu.translate mmu ~access:Perm.Load rw with
  | Ok _ -> ()
  | Error f -> Alcotest.fail (Mmu.fault_to_string f)

let test_mmu_roload_disabled () =
  let _mem, pt = make_env () in
  let rw = 0x40000 in
  Page_table.map_page pt ~va:rw ~ppn:3 ~perms:Perm.rw ~user:true ~key:0;
  let mmu = make_mmu ~roload:false pt in
  (* without the check logic, Roload degrades to Load *)
  match Mmu.translate mmu ~access:(Perm.Roload 5) rw with
  | Ok _ -> ()
  | Error f -> Alcotest.fail (Mmu.fault_to_string f)

let test_mmu_invalidate () =
  let _mem, pt = make_env () in
  let va = 0x50000 in
  Page_table.map_page pt ~va ~ppn:3 ~perms:Perm.rw ~user:true ~key:0;
  let mmu = make_mmu pt in
  (match Mmu.translate mmu ~access:Perm.Load va with Ok _ -> () | Error _ -> Alcotest.fail "t");
  (* change the mapping under the TLB's feet, then invalidate *)
  (match Page_table.set_perms pt ~va ~perms:Perm.ro with Ok () -> () | Error _ -> ());
  Mmu.invalidate mmu ~va;
  match Mmu.translate mmu ~access:Perm.Store va with
  | Error (Mmu.Page_fault _) -> ()
  | _ -> Alcotest.fail "store after downgrade must fault"

(* property: the PTE field encoding round-trips *)
let prop_pte_roundtrip =
  QCheck.Test.make ~count:500 ~name:"PTE fields round-trip"
    QCheck.(triple (int_bound 0xFFFFF) (int_bound 1023) bool)
    (fun (ppn, key, writable) ->
      let perms = if writable then Perm.rw else Perm.ro in
      let pte = Pte.make ~ppn ~perms ~user:true ~key in
      Pte.ppn pte = ppn && Pte.key pte = key && Pte.writable pte = writable
      && Pte.valid pte && Pte.user pte)

(* property: TLB-cached translation agrees with a direct walk *)
let prop_tlb_walk_agree =
  QCheck.Test.make ~count:100 ~name:"MMU translation = direct walk"
    QCheck.(small_list (pair (int_bound 255) (int_bound 3)))
    (fun pages ->
      let _mem, pt = make_env () in
      let mmu = make_mmu pt in
      let mapped = Hashtbl.create 16 in
      List.iter
        (fun (slot, k) ->
          let va = 0x100000 + (slot * page) in
          if not (Hashtbl.mem mapped va) then begin
            Page_table.map_page pt ~va ~ppn:(100 + slot) ~perms:Perm.rw ~user:true ~key:k;
            Hashtbl.add mapped va (100 + slot)
          end)
        pages;
      Hashtbl.fold
        (fun va ppn acc ->
          acc
          &&
          (* translate twice: miss path then hit path must agree *)
          match (Mmu.translate mmu ~access:Perm.Load va, Mmu.translate mmu ~access:Perm.Load va) with
          | Ok a, Ok b -> a.Mmu.pa = ppn * page && b.Mmu.pa = a.Mmu.pa
          | _ -> false)
        mapped true)

(* property: [Tlb.rehit]'s documented contract — replaying a hit through a
   captured handle, with [lookup] as the fallback on refusal, is
   observably identical to always calling [lookup]: same PTE, same
   hit/miss counters, and the same LRU state afterwards (probed by
   running an identical eviction-heavy tail on a twin TLB).  The op
   sequence interleaves inserts, lookups and invalidates over a small vpn
   space so handles regularly go stale through both recycling and
   invalidation. *)
let prop_tlb_rehit_exact_accounting =
  let apply t = function
    | `Fill (vpn, key) -> (
      (* model an MMU fill: insert only on a miss — [insert] itself does
         not dedupe, real callers never insert a cached vpn *)
      match Tlb.lookup t vpn with
      | Some _ -> ()
      | None ->
        Tlb.insert t ~vpn ~pte:(Pte.make ~ppn:(vpn + 100) ~perms:Perm.ro ~user:true ~key))
    | `Lookup vpn -> ignore (Tlb.lookup t vpn)
    | `Invalidate vpn -> Tlb.invalidate t ~vpn
  in
  let op =
    QCheck.Gen.(
      int_bound 11 >>= fun vpn ->
      frequency
        [ (4, map (fun k -> `Fill (vpn, k)) (int_bound 3));
          (3, return (`Lookup vpn));
          (1, return (`Invalidate vpn)) ])
  in
  let print_op = function
    | `Fill (v, k) -> Printf.sprintf "fill %d/k%d" v k
    | `Lookup v -> Printf.sprintf "lkp %d" v
    | `Invalidate v -> Printf.sprintf "inv %d" v
  in
  let arb =
    QCheck.make
      ~print:(fun (a, vpn, b) ->
        Printf.sprintf "[%s] vpn=%d [%s]"
          (String.concat "; " (List.map print_op a))
          vpn
          (String.concat "; " (List.map print_op b)))
      QCheck.Gen.(triple (list_size (int_bound 20) op) (int_bound 11) (list_size (int_bound 20) op))
  in
  QCheck.Test.make ~count:300 ~name:"Tlb.rehit = lookup (accounting, LRU, fallback)" arb
    (fun (before, vpn, between) ->
      let a = Tlb.create ~name:"a" ~entries:4 in
      let b = Tlb.create ~name:"b" ~entries:4 in
      List.iter (fun o -> apply a o; apply b o) before;
      let handle = Tlb.peek a ~vpn in
      List.iter (fun o -> apply a o; apply b o) between;
      let via_rehit =
        match handle with
        | None -> Tlb.lookup a vpn
        | Some h -> (
          match Tlb.rehit a ~vpn h with
          | Some pte -> Some pte
          | None -> Tlb.lookup a vpn)
      in
      let via_lookup = Tlb.lookup b vpn in
      let stats_eq () =
        let sa = Tlb.stats a and sb = Tlb.stats b in
        sa.Tlb.hits = sb.Tlb.hits && sa.Tlb.misses = sb.Tlb.misses
      in
      via_rehit = via_lookup
      && stats_eq ()
      && Tlb.occupancy a = Tlb.occupancy b
      (* same LRU state: an eviction-heavy tail behaves identically *)
      && List.for_all
           (fun probe ->
             Tlb.insert a ~vpn:(probe + 50)
               ~pte:(Pte.make ~ppn:probe ~perms:Perm.ro ~user:true ~key:0);
             Tlb.insert b ~vpn:(probe + 50)
               ~pte:(Pte.make ~ppn:probe ~perms:Perm.ro ~user:true ~key:0);
             List.for_all (fun v -> Tlb.lookup a v = Tlb.lookup b v) [ vpn; probe + 50 ]
             && stats_eq ())
           [ 0; 1; 2; 3; 4; 5 ])

let suite =
  [
    Alcotest.test_case "physical memory" `Quick test_phys_mem;
    Alcotest.test_case "pte fields" `Quick test_pte_fields;
    Alcotest.test_case "pte key position (top 10 bits)" `Quick test_pte_key_position;
    Alcotest.test_case "sv39 walk/map/unmap" `Quick test_walk_and_map;
    Alcotest.test_case "set key and perms" `Quick test_set_key_and_perms;
    Alcotest.test_case "tlb lru" `Quick test_tlb_lru;
    Alcotest.test_case "mmu basic + tlb fill" `Quick test_mmu_basic;
    Alcotest.test_case "mmu roload conditions" `Quick test_mmu_roload_conditions;
    Alcotest.test_case "mmu roload disabled" `Quick test_mmu_roload_disabled;
    Alcotest.test_case "mmu invalidate" `Quick test_mmu_invalidate;
    Seeded.to_alcotest prop_pte_roundtrip;
    Seeded.to_alcotest prop_tlb_walk_agree;
    Seeded.to_alcotest prop_tlb_rehit_exact_accounting;
  ]
