(* Multi-process kernel tests: fork/wait/exit semantics, the request
   device, and the scheduler-determinism contract — the same program and
   request stream must produce byte-identical results across execution
   engines and time slices, and the server checksum must be identical
   across hardening schemes even though the request partition differs. *)

module Kernel = Roload_kernel.Kernel
module Process = Roload_kernel.Process
module Machine = Roload_machine.Machine
module Config = Roload_machine.Config
module Pass = Roload_passes.Pass
module Server = Roload_workloads.Server_like
module System = Core.System
module Toolchain = Core.Toolchain

let compile ?(scheme = Pass.Unprotected) ~name src =
  let options = { Toolchain.default_options with scheme } in
  Toolchain.compile_exe ~options ~name src

let serve ?time_slice ?engine ?shards ?supervision ?configure
    ?(scheme = Pass.Unprotected) ~requests src =
  let exe = compile ~scheme ~name:"mp" src in
  System.run_server ?time_slice ?engine ?shards ?supervision ?configure
    ~variant:System.Processor_kernel_modified ~requests exe

(* force immediate trace compilation inside [f], restoring afterwards *)
let with_hot_threshold n f =
  let prev = Machine.default_hot_threshold () in
  Machine.set_default_hot_threshold n;
  Fun.protect ~finally:(fun () -> Machine.set_default_hot_threshold prev) f

let all_exited statuses =
  List.for_all
    (fun (_pid, st) -> match st with Process.Exited _ -> true | _ -> false)
    statuses

(* ---- fork/wait basics ---- *)

let fork_wait_src =
  {|
int main() {
  int pid = fork();
  if (pid == 0) { exit(7); }
  int st = wait();
  print_int(st);
  print_char('\n');
  return 0;
}
|}

let test_fork_wait () =
  let m, stats = serve ~requests:[||] fork_wait_src in
  Alcotest.(check string) "parent reaps the child's status" "7\n" stats.System.console;
  Alcotest.(check string) "root exits cleanly" "exit 0" (System.status_string m);
  Alcotest.(check int) "two tasks ran" 2 (List.length stats.System.task_statuses);
  Alcotest.(check bool) "all tasks exited" true (all_exited stats.System.task_statuses)

let wait_no_children_src =
  {|
int main() {
  int r = wait();
  print_int(r);
  print_char('\n');
  return 0;
}
|}

let test_wait_echild () =
  let _m, stats = serve ~requests:[||] wait_no_children_src in
  Alcotest.(check string) "wait with no children returns ECHILD" "-10\n"
    stats.System.console

(* fan-out: every child gets a distinct pid and its own address space;
   the parent's counter is unaffected by child increments *)
let fork_isolation_src =
  {|
int counter;

int main() {
  counter = 100;
  int pid1 = fork();
  if (pid1 == 0) { counter = counter + 1; exit(counter % 256); }
  int pid2 = fork();
  if (pid2 == 0) { counter = counter + 2; exit(counter % 256); }
  int a = wait();
  int b = wait();
  print_int(a + b);
  print_char('\n');
  print_int(counter);
  print_char('\n');
  return 0;
}
|}

let test_fork_isolation () =
  let _m, stats = serve ~requests:[||] fork_isolation_src in
  (* children exit 101 and 102 (reap order independent of schedule
     because we sum); the parent's copy stays 100 *)
  Alcotest.(check string) "copied address spaces diverge independently" "203\n100\n"
    stats.System.console

(* ---- the request device ---- *)

let drain_src =
  {|
int main() {
  int r = read_request();
  while (r >= 0) {
    print_int(r);
    print_char('\n');
    r = read_request();
  }
  return 0;
}
|}

let test_request_drain () =
  let m, stats = serve ~requests:[| 5; 6; 7 |] drain_src in
  Alcotest.(check string) "payloads arrive in order" "5\n6\n7\n" stats.System.console;
  Alcotest.(check int) "all requests served" 3 stats.System.served;
  Alcotest.(check int) "every latency recorded" 3 (Array.length stats.System.latencies);
  Array.iter
    (fun l -> Alcotest.(check bool) "latency positive" true (l > 0L))
    stats.System.latencies;
  Alcotest.(check string) "clean exit" "exit 0" (System.status_string m)

(* ---- wait semantics regressions ---- *)

(* Three children exit (and become zombies) while the parent burns a
   delay loop; the parent's waits must then reap them in pid order, and
   a fourth wait must return ECHILD.  Guards the reap path against the
   supervision rework: reincarnation must never resurrect a zombie, and
   externally-killed tasks must still reach the zombie state the parent
   reaps. *)
let multi_zombie_src =
  {|
int main() {
  int i = 0;
  int pid = 1;
  while (i < 3 && pid != 0) {
    pid = fork();
    i = i + 1;
  }
  if (pid == 0) { exit(40 + i); }
  int d = 0;
  int j = 0;
  while (j < 100000) { d = (d + j) % 97; j = j + 1; }
  if (d < 0) { exit(1); }
  print_int(wait());
  print_char('\n');
  print_int(wait());
  print_char('\n');
  print_int(wait());
  print_char('\n');
  print_int(wait());
  print_char('\n');
  return 0;
}
|}

let test_multi_zombie_reap_order () =
  let m, stats = serve ~requests:[||] multi_zombie_src in
  Alcotest.(check string)
    "zombies reaped in pid order, then ECHILD" "41\n42\n43\n-10\n"
    stats.System.console;
  Alcotest.(check string) "root exits cleanly" "exit 0" (System.status_string m);
  Alcotest.(check bool) "all tasks exited" true (all_exited stats.System.task_statuses)

(* ---- supervision: restart, redelivery, deadline ---- *)

(* two workers acking every request explicitly; the root prints the
   kernel-side checksum, which survives worker kills *)
let supervised_src =
  {|
int main() {
  int i = 0;
  int pid = 1;
  while (i < 2 && pid != 0) {
    pid = fork();
    i = i + 1;
  }
  if (pid == 0) {
    int r = read_request();
    while (r >= 0) {
      int k = 0;
      int acc = r;
      while (k < 2000) { acc = (acc * 31 + k) % 1000003; k = k + 1; }
      int ok = complete_request(acc);
      if (ok < 0) { exit(90); }
      r = read_request();
    }
    exit(0);
  }
  i = 0;
  while (i < 2) {
    int st = wait();
    if (st < -100) { exit(1); }
    i = i + 1;
  }
  print_int(server_checksum());
  print_char('\n');
  return 0;
}
|}

let supervision ?(max_restarts = 2) ?(deadline_cycles = 0L) () =
  { Kernel.max_restarts; Kernel.deadline_cycles }

let test_supervised_restart_redelivers () =
  let requests = [| 3; 1; 4; 1; 5; 9; 2; 6 |] in
  let _, clean = serve ~supervision:(supervision ()) ~requests supervised_src in
  Alcotest.(check int) "baseline needs no restart" 0 clean.System.restarts;
  let killed = ref false in
  let configure kernel =
    (* kill a worker that holds an in-flight request (never the hook's
       caller, whose previous request was just implicitly acked) — its
       death must force a redelivery *)
    Kernel.set_request_hook kernel ~at:4 (fun k ->
        match
          List.find_opt (fun pid -> Kernel.task_inflight k pid >= 0) (Kernel.worker_pids k)
        with
        | Some pid -> killed := Kernel.kill_task k ~pid ~info:"chaos"
        | None -> ())
  in
  let m, stats =
    serve ~supervision:(supervision ()) ~configure ~requests supervised_src
  in
  Alcotest.(check bool) "the chaos kill landed" true !killed;
  Alcotest.(check string) "root exits cleanly" "exit 0" (System.status_string m);
  Alcotest.(check int) "exactly one supervised restart" 1 stats.System.restarts;
  Alcotest.(check int) "every request served" (Array.length requests)
    stats.System.served;
  Alcotest.(check string) "checksum identical to the clean run"
    clean.System.console stats.System.console;
  let redelivered =
    Array.fold_left
      (fun acc (rr : Kernel.request_record) -> acc + rr.Kernel.rr_redeliveries)
      0 stats.System.records
  in
  Alcotest.(check bool) "the in-flight request was redelivered" true (redelivered >= 1);
  Alcotest.(check bool) "all tasks exited" true (all_exited stats.System.task_statuses)

(* restart budget: a worker that dies on every delivery of one poisoned
   request is reincarnated exactly max_restarts times, then reaped as a
   normal zombie — the request stays lost and everything else is served *)
let hang_on_seven_src =
  {|
int main() {
  int pid = fork();
  if (pid == 0) {
    int r = read_request();
    while (r >= 0) {
      if (r == 7) {
        while (0 < 1) { r = r + 0; }
      }
      int ok = complete_request(r + 100);
      if (ok < 0) { exit(90); }
      r = read_request();
    }
    exit(0);
  }
  int st = wait();
  if (st < -100) { exit(1); }
  print_int(server_checksum());
  print_char('\n');
  return 0;
}
|}

let test_deadline_watchdog_bounded_restarts () =
  let requests = [| 5; 7; 6 |] in
  let m, stats =
    serve
      ~supervision:(supervision ~max_restarts:1 ~deadline_cycles:300_000L ())
      ~requests hang_on_seven_src
  in
  (* served: 105 and 106 commit; the poisoned 7 hangs its worker, the
     deadline watchdog kills it, the supervisor restarts it once, the
     redelivered 7 hangs again and the budget is spent *)
  Alcotest.(check string) "checksum of the two served requests" "211\n"
    stats.System.console;
  Alcotest.(check string) "root exits cleanly" "exit 0" (System.status_string m);
  Alcotest.(check int) "two of three served" 2 stats.System.served;
  Alcotest.(check int) "exactly one restart" 1 stats.System.restarts;
  let poisoned = stats.System.records.(1) in
  Alcotest.(check bool) "poisoned request never committed" true
    (poisoned.Kernel.rr_result = None);
  (* requeued on both deaths: once into the restarted worker's hands,
     once more when the budget-spent worker dies for good *)
  Alcotest.(check int) "poisoned request was redelivered twice" 2
    poisoned.Kernel.rr_redeliveries;
  (* the budget-spent worker's last incarnation died by the watchdog's
     signal; everything else exited *)
  let killed, exited =
    List.partition
      (fun (_pid, st) -> match st with Process.Killed _ -> true | _ -> false)
      stats.System.task_statuses
  in
  Alcotest.(check int) "one task died by signal" 1 (List.length killed);
  Alcotest.(check bool) "the rest exited" true (all_exited exited)

(* ---- scheduler determinism: engines and time slices ---- *)

let small_requests = Server.requests ~seed:42L ~count:400

let server_exe scheme =
  compile ~scheme ~name:"server" (Server.source ~scale:1)

let run_server_on ?time_slice ~engine exe =
  System.run_server ?time_slice ~engine ~variant:System.Processor_kernel_modified
    ~requests:small_requests exe

(* same interleaving => byte-identical measurement across all three
   engines (the tentpole's determinism contract) *)
let test_engine_determinism () =
  let exe = server_exe Pass.Vcall in
  let block_m, block_s = run_server_on ~engine:Machine.Block_cached exe in
  let single_m, single_s = run_server_on ~engine:Machine.Single_step exe in
  let traced_m, traced_s =
    with_hot_threshold 1 (fun () -> run_server_on ~engine:Machine.Traced exe)
  in
  let check_same ctx (a : System.measurement) (sa : System.server_stats)
      (b : System.measurement) (sb : System.server_stats) =
    Alcotest.(check string) (ctx ^ ": console") sa.System.console sb.System.console;
    Alcotest.(check int64) (ctx ^ ": cycles") a.System.cycles b.System.cycles;
    Alcotest.(check int64) (ctx ^ ": instructions") a.System.instructions
      b.System.instructions;
    Alcotest.(check int) (ctx ^ ": served") sa.System.served sb.System.served;
    Alcotest.(check (array int64))
      (ctx ^ ": latencies") sa.System.latencies sb.System.latencies
  in
  check_same "block-vs-single" block_m block_s single_m single_s;
  check_same "traced-vs-single" traced_m traced_s single_m single_s;
  Alcotest.(check int) "all requests served" (Array.length small_requests)
    single_s.System.served;
  Alcotest.(check bool) "all tasks exited" true (all_exited single_s.System.task_statuses)

(* a different time slice changes the interleaving, but the printed
   checksum is partition-independent by construction *)
let test_time_slice_invariance () =
  let exe = server_exe Pass.Unprotected in
  let _, s1 = run_server_on ~time_slice:5_000 ~engine:Machine.Block_cached exe in
  let _, s2 = run_server_on ~time_slice:20_000 ~engine:Machine.Block_cached exe in
  let _, s3 = run_server_on ~time_slice:50_000 ~engine:Machine.Block_cached exe in
  Alcotest.(check string) "5k vs 20k slice" s1.System.console s2.System.console;
  Alcotest.(check string) "20k vs 50k slice" s2.System.console s3.System.console;
  Alcotest.(check int) "served under 5k slice" (Array.length small_requests)
    s1.System.served

(* the checksum is also scheme-independent, even though each scheme's
   instruction stream (and hence request partition) differs *)
let test_scheme_invariance () =
  let run scheme =
    let _, s = run_server_on ~engine:Machine.Block_cached (server_exe scheme) in
    Alcotest.(check bool)
      (Pass.scheme_name scheme ^ ": all tasks exited")
      true
      (all_exited s.System.task_statuses);
    s.System.console
  in
  let stock = run Pass.Unprotected in
  Alcotest.(check string) "VCall checksum" stock (run Pass.Vcall);
  Alcotest.(check string) "ICall checksum" stock (run Pass.Icall)

(* ---- qcheck: the payload-multiset checksum is invariant under any
   seeded single-worker kill, on all three engines ---- *)

let kill_requests = Server.requests ~seed:7L ~count:120
let kill_supervision = { Kernel.max_restarts = 2; Kernel.deadline_cycles = 0L }

let serve_with_kill ~engine ?at_slot exe =
  let configure =
    Option.map
      (fun (at, slot) kernel ->
        Kernel.set_request_hook kernel ~at (fun k ->
            match Kernel.worker_pids k with
            | [] -> ()
            | pids ->
              let pid = List.nth pids (slot mod List.length pids) in
              ignore (Kernel.kill_task k ~pid ~info:"chaos")))
      at_slot
  in
  System.run_server ~engine ?configure ~supervision:kill_supervision
    ~variant:System.Processor_kernel_modified ~requests:kill_requests exe

let prop_checksum_under_kill =
  let exe = server_exe Pass.Unprotected in
  let baseline =
    let _, s = serve_with_kill ~engine:Machine.Block_cached exe in
    s.System.console
  in
  QCheck.Test.make ~count:8
    ~name:"checksum invariant under any seeded worker kill, all engines"
    QCheck.(pair (int_range 5 100) (int_range 0 7))
    (fun (at, slot) ->
      List.for_all
        (fun engine ->
          let run () = serve_with_kill ~engine ~at_slot:(at, slot) exe in
          let _, s =
            if engine = Machine.Traced then with_hot_threshold 1 run else run ()
          in
          String.equal s.System.console baseline
          && s.System.served = Array.length kill_requests
          && all_exited s.System.task_statuses)
        [ Machine.Single_step; Machine.Block_cached; Machine.Traced ])

let suite =
  [
    Alcotest.test_case "fork/wait round trip" `Quick test_fork_wait;
    Alcotest.test_case "wait with no children => ECHILD" `Quick test_wait_echild;
    Alcotest.test_case "fork isolates address spaces" `Quick test_fork_isolation;
    Alcotest.test_case "request device drains in order" `Quick test_request_drain;
    Alcotest.test_case "wait reaps multiple zombies in pid order" `Quick
      test_multi_zombie_reap_order;
    Alcotest.test_case "supervised restart redelivers the in-flight request" `Quick
      test_supervised_restart_redelivers;
    Alcotest.test_case "deadline watchdog with bounded restarts" `Quick
      test_deadline_watchdog_bounded_restarts;
    Seeded.to_alcotest prop_checksum_under_kill;
    Alcotest.test_case "server identical across engines" `Slow test_engine_determinism;
    Alcotest.test_case "checksum invariant under time slice" `Slow
      test_time_slice_invariance;
    Alcotest.test_case "checksum invariant across schemes" `Slow test_scheme_invariance;
  ]
