(* Multi-process kernel tests: fork/wait/exit semantics, the request
   device, and the scheduler-determinism contract — the same program and
   request stream must produce byte-identical results across execution
   engines and time slices, and the server checksum must be identical
   across hardening schemes even though the request partition differs. *)

module Kernel = Roload_kernel.Kernel
module Process = Roload_kernel.Process
module Machine = Roload_machine.Machine
module Config = Roload_machine.Config
module Pass = Roload_passes.Pass
module Server = Roload_workloads.Server_like
module System = Core.System
module Toolchain = Core.Toolchain

let compile ?(scheme = Pass.Unprotected) ~name src =
  let options = { Toolchain.default_options with scheme } in
  Toolchain.compile_exe ~options ~name src

let serve ?time_slice ?engine ?(scheme = Pass.Unprotected) ~requests src =
  let exe = compile ~scheme ~name:"mp" src in
  System.run_server ?time_slice ?engine ~variant:System.Processor_kernel_modified
    ~requests exe

(* force immediate trace compilation inside [f], restoring afterwards *)
let with_hot_threshold n f =
  let prev = Machine.default_hot_threshold () in
  Machine.set_default_hot_threshold n;
  Fun.protect ~finally:(fun () -> Machine.set_default_hot_threshold prev) f

let all_exited statuses =
  List.for_all
    (fun (_pid, st) -> match st with Process.Exited _ -> true | _ -> false)
    statuses

(* ---- fork/wait basics ---- *)

let fork_wait_src =
  {|
int main() {
  int pid = fork();
  if (pid == 0) { exit(7); }
  int st = wait();
  print_int(st);
  print_char('\n');
  return 0;
}
|}

let test_fork_wait () =
  let m, stats = serve ~requests:[||] fork_wait_src in
  Alcotest.(check string) "parent reaps the child's status" "7\n" stats.System.console;
  Alcotest.(check string) "root exits cleanly" "exit 0" (System.status_string m);
  Alcotest.(check int) "two tasks ran" 2 (List.length stats.System.task_statuses);
  Alcotest.(check bool) "all tasks exited" true (all_exited stats.System.task_statuses)

let wait_no_children_src =
  {|
int main() {
  int r = wait();
  print_int(r);
  print_char('\n');
  return 0;
}
|}

let test_wait_echild () =
  let _m, stats = serve ~requests:[||] wait_no_children_src in
  Alcotest.(check string) "wait with no children returns ECHILD" "-10\n"
    stats.System.console

(* fan-out: every child gets a distinct pid and its own address space;
   the parent's counter is unaffected by child increments *)
let fork_isolation_src =
  {|
int counter;

int main() {
  counter = 100;
  int pid1 = fork();
  if (pid1 == 0) { counter = counter + 1; exit(counter % 256); }
  int pid2 = fork();
  if (pid2 == 0) { counter = counter + 2; exit(counter % 256); }
  int a = wait();
  int b = wait();
  print_int(a + b);
  print_char('\n');
  print_int(counter);
  print_char('\n');
  return 0;
}
|}

let test_fork_isolation () =
  let _m, stats = serve ~requests:[||] fork_isolation_src in
  (* children exit 101 and 102 (reap order independent of schedule
     because we sum); the parent's copy stays 100 *)
  Alcotest.(check string) "copied address spaces diverge independently" "203\n100\n"
    stats.System.console

(* ---- the request device ---- *)

let drain_src =
  {|
int main() {
  int r = read_request();
  while (r >= 0) {
    print_int(r);
    print_char('\n');
    r = read_request();
  }
  return 0;
}
|}

let test_request_drain () =
  let m, stats = serve ~requests:[| 5; 6; 7 |] drain_src in
  Alcotest.(check string) "payloads arrive in order" "5\n6\n7\n" stats.System.console;
  Alcotest.(check int) "all requests served" 3 stats.System.served;
  Alcotest.(check int) "every latency recorded" 3 (Array.length stats.System.latencies);
  Array.iter
    (fun l -> Alcotest.(check bool) "latency positive" true (l > 0L))
    stats.System.latencies;
  Alcotest.(check string) "clean exit" "exit 0" (System.status_string m)

(* ---- scheduler determinism: engines and time slices ---- *)

let small_requests = Server.requests ~seed:42L ~count:400

let server_exe scheme =
  compile ~scheme ~name:"server" (Server.source ~scale:1)

let run_server_on ?time_slice ~engine exe =
  System.run_server ?time_slice ~engine ~variant:System.Processor_kernel_modified
    ~requests:small_requests exe

(* same interleaving => byte-identical measurement across all three
   engines (the tentpole's determinism contract) *)
let test_engine_determinism () =
  let exe = server_exe Pass.Vcall in
  let block_m, block_s = run_server_on ~engine:Machine.Block_cached exe in
  let single_m, single_s = run_server_on ~engine:Machine.Single_step exe in
  let traced_m, traced_s =
    with_hot_threshold 1 (fun () -> run_server_on ~engine:Machine.Traced exe)
  in
  let check_same ctx (a : System.measurement) (sa : System.server_stats)
      (b : System.measurement) (sb : System.server_stats) =
    Alcotest.(check string) (ctx ^ ": console") sa.System.console sb.System.console;
    Alcotest.(check int64) (ctx ^ ": cycles") a.System.cycles b.System.cycles;
    Alcotest.(check int64) (ctx ^ ": instructions") a.System.instructions
      b.System.instructions;
    Alcotest.(check int) (ctx ^ ": served") sa.System.served sb.System.served;
    Alcotest.(check (array int64))
      (ctx ^ ": latencies") sa.System.latencies sb.System.latencies
  in
  check_same "block-vs-single" block_m block_s single_m single_s;
  check_same "traced-vs-single" traced_m traced_s single_m single_s;
  Alcotest.(check int) "all requests served" (Array.length small_requests)
    single_s.System.served;
  Alcotest.(check bool) "all tasks exited" true (all_exited single_s.System.task_statuses)

(* a different time slice changes the interleaving, but the printed
   checksum is partition-independent by construction *)
let test_time_slice_invariance () =
  let exe = server_exe Pass.Unprotected in
  let _, s1 = run_server_on ~time_slice:5_000 ~engine:Machine.Block_cached exe in
  let _, s2 = run_server_on ~time_slice:20_000 ~engine:Machine.Block_cached exe in
  let _, s3 = run_server_on ~time_slice:50_000 ~engine:Machine.Block_cached exe in
  Alcotest.(check string) "5k vs 20k slice" s1.System.console s2.System.console;
  Alcotest.(check string) "20k vs 50k slice" s2.System.console s3.System.console;
  Alcotest.(check int) "served under 5k slice" (Array.length small_requests)
    s1.System.served

(* the checksum is also scheme-independent, even though each scheme's
   instruction stream (and hence request partition) differs *)
let test_scheme_invariance () =
  let run scheme =
    let _, s = run_server_on ~engine:Machine.Block_cached (server_exe scheme) in
    Alcotest.(check bool)
      (Pass.scheme_name scheme ^ ": all tasks exited")
      true
      (all_exited s.System.task_statuses);
    s.System.console
  in
  let stock = run Pass.Unprotected in
  Alcotest.(check string) "VCall checksum" stock (run Pass.Vcall);
  Alcotest.(check string) "ICall checksum" stock (run Pass.Icall)

let suite =
  [
    Alcotest.test_case "fork/wait round trip" `Quick test_fork_wait;
    Alcotest.test_case "wait with no children => ECHILD" `Quick test_wait_echild;
    Alcotest.test_case "fork isolates address spaces" `Quick test_fork_isolation;
    Alcotest.test_case "request device drains in order" `Quick test_request_drain;
    Alcotest.test_case "server identical across engines" `Slow test_engine_determinism;
    Alcotest.test_case "checksum invariant under time slice" `Slow
      test_time_slice_invariance;
    Alcotest.test_case "checksum invariant across schemes" `Slow test_scheme_invariance;
  ]
