(* Assembler tests: parsing, li expansion, branch relaxation, RVC
   compression, sections/relocations. *)

module A = Roload_asm.Asm_ir
module Parser = Roload_asm.Asm_parser
module Assemble = Roload_asm.Assemble
module Inst = Roload_isa.Inst
module Reg = Roload_isa.Reg
module Section = Roload_obj.Section
module Objfile = Roload_obj.Objfile
module Reloc = Roload_obj.Reloc

let test_parse_basic () =
  let items = Parser.parse "  addi a0, a1, -8   # comment\n  ret\n" in
  match items with
  | [ A.Inst (Inst.Op_imm (Inst.Add, rd, rs1, -8L)); A.Inst i2 ] ->
    Alcotest.(check string) "rd" "a0" (Reg.name rd);
    Alcotest.(check string) "rs1" "a1" (Reg.name rs1);
    Alcotest.(check bool) "ret" true (Inst.equal i2 Inst.ret)
  | _ -> Alcotest.failf "unexpected parse (%d items)" (List.length items)

let test_parse_roload () =
  match Parser.parse "ld.ro a0, (a1), 111\nlwu.ro t0, (t1), 5\n" with
  | [ A.Inst (Inst.Load_ro { key = 111; width = Inst.Double; _ });
      A.Inst (Inst.Load_ro { key = 5; width = Inst.Word; unsigned = true; _ }) ] ->
    ()
  | _ -> Alcotest.fail "roload parse"

let test_parse_directives () =
  match
    Parser.parse
      ".section .rodata.key.42\nlabel:\n.quad foo\n.quad 7\n.asciz \"hi\"\n.zero 3\n"
  with
  | [ A.Section ".rodata.key.42"; A.Label "label"; A.Quad_sym "foo"; A.Quad_int 7L;
      A.Asciz "hi"; A.Zero 3 ] ->
    ()
  | _ -> Alcotest.fail "directive parse"

let test_parse_error_line () =
  match Parser.parse "nop\nbogus_mnemonic a0\n" with
  | exception Parser.Parse_error { line = 2; _ } -> ()
  | exception Parser.Parse_error { line; _ } -> Alcotest.failf "wrong line %d" line
  | _ -> Alcotest.fail "expected parse error"

(* printing then re-parsing an item list gives the same items *)
let test_print_parse_roundtrip () =
  let items =
    [ A.Section ".text"; A.Global "f"; A.Label "f"; A.Inst (Inst.li Reg.a0 42L);
      A.Inst (Inst.ld_ro Reg.a0 Reg.a1 7); A.Branch_to (Inst.Bne, Reg.a0, Reg.zero, "f");
      A.Inst Inst.ret; A.Section ".rodata.key.7"; A.Label "g"; A.Quad_sym "f" ]
  in
  let text = A.program_to_string items in
  let reparsed = Parser.parse text in
  Alcotest.(check int) "item count" (List.length items) (List.length reparsed)

(* li expansion: evaluate the expansion with a tiny interpreter and check
   it produces exactly the constant *)
let eval_li_seq insts =
  let regs = Array.make 32 0L in
  List.iter
    (fun i ->
      match i with
      | Inst.Op_imm (op, rd, rs1, imm) ->
        regs.(Reg.to_int rd) <- Roload_machine.Alu.op op regs.(Reg.to_int rs1) imm
      | Inst.Op_imm_w (op, rd, rs1, imm) ->
        regs.(Reg.to_int rd) <- Roload_machine.Alu.op_w op regs.(Reg.to_int rs1) imm
      | Inst.Lui (rd, imm) ->
        regs.(Reg.to_int rd) <-
          Roload_util.Bits.sign_extend (Int64.shift_left imm 12) ~width:32
      | _ -> failwith "unexpected instruction in li expansion")
    insts;
  regs.(Reg.to_int Reg.a0)

let prop_li_expansion =
  QCheck.Test.make ~count:2000 ~name:"li expansion materializes the constant"
    QCheck.int64
    (fun v -> eval_li_seq (A.expand_li Reg.a0 v) = v)

let test_li_expansion_golden () =
  Alcotest.(check int) "small constant is one addi" 1 (List.length (A.expand_li Reg.a0 42L));
  Alcotest.(check int64) "42" 42L (eval_li_seq (A.expand_li Reg.a0 42L));
  Alcotest.(check int64) "1 << 40" (Int64.shift_left 1L 40)
    (eval_li_seq (A.expand_li Reg.a0 (Int64.shift_left 1L 40)));
  Alcotest.(check int64) "min_int" Int64.min_int (eval_li_seq (A.expand_li Reg.a0 Int64.min_int))

let assemble_text ?(compress = true) text =
  Assemble.assemble ~options:{ Assemble.compress } (Parser.parse text)

let text_section obj =
  match Objfile.find_section obj ".text" with
  | Some s -> s
  | None -> Alcotest.fail "no .text"

let test_compression_shrinks () =
  let src = ".text\nf:\n  li a0, 3\n  mv a1, a0\n  add a0, a0, a1\n  ret\n" in
  let big = text_section (assemble_text ~compress:false src) in
  let small = text_section (assemble_text ~compress:true src) in
  Alcotest.(check int) "uncompressed" 16 (String.length big.Section.data);
  Alcotest.(check bool) "compressed smaller" true
    (String.length small.Section.data < String.length big.Section.data)

let test_branch_relaxation () =
  (* a conditional branch across > 4 KiB of code must relax to an
     inverted branch + jal pair, and still assemble *)
  let b = Buffer.create 20000 in
  Buffer.add_string b ".text\nstart:\n  beq a0, a1, far\n";
  for _ = 1 to 2000 do
    Buffer.add_string b "  add a0, a0, a1\n"
  done;
  Buffer.add_string b "far:\n  ret\n";
  let obj = assemble_text ~compress:false (Buffer.contents b) in
  let sec = text_section obj in
  (* 2000 adds + relaxed pair (8) + ret *)
  Alcotest.(check int) "relaxed size" ((2000 * 4) + 8 + 4) (String.length sec.Section.data);
  (* decode the first instruction: must be the inverted short branch *)
  match Roload_isa.Disasm.decode_at sec.Section.data 0 with
  | Ok (Inst.Branch (Inst.Bne, _, _, 8L), 4) -> ()
  | Ok (i, _) -> Alcotest.failf "expected inverted bne, got %s" (Inst.to_string i)
  | Error e -> Alcotest.fail e

let test_section_attrs () =
  let obj =
    assemble_text ".section .rodata.key.99\nx:\n.quad 1\n.section .text\nf:\n  ret\n"
  in
  (match Objfile.find_section obj ".rodata.key.99" with
  | Some s ->
    Alcotest.(check int) "key" 99 s.Section.key;
    Alcotest.(check bool) "read-only" true (Roload_mem.Perm.equal s.Section.perms Roload_mem.Perm.ro)
  | None -> Alcotest.fail "keyed section missing");
  match Objfile.find_section obj ".text" with
  | Some s -> Alcotest.(check bool) "text is rx" true (Roload_mem.Perm.equal s.Section.perms Roload_mem.Perm.rx)
  | None -> Alcotest.fail ".text missing"

let test_relocations_recorded () =
  let obj = assemble_text ".text\nf:\n  la a0, some_sym\n  call g\n.rodata\nt:\n.quad h\n" in
  let kinds = List.map (fun (r : Reloc.t) -> r.Reloc.kind) obj.Objfile.relocs in
  Alcotest.(check bool) "hi20" true (List.mem Reloc.Hi20 kinds);
  Alcotest.(check bool) "lo12" true (List.mem Reloc.Lo12_i kinds);
  Alcotest.(check bool) "jal" true (List.mem Reloc.Jal kinds);
  Alcotest.(check bool) "abs64" true (List.mem Reloc.Abs64 kinds);
  let undef = Objfile.undefined_symbols obj in
  Alcotest.(check bool) "undef includes g" true (List.mem "g" undef)

let test_duplicate_label_rejected () =
  match assemble_text ".text\nf:\nf:\n  ret\n" with
  | exception Assemble.Error _ -> ()
  | _ -> Alcotest.fail "duplicate label must be rejected"

let test_undefined_branch_target () =
  match assemble_text ".text\nf:\n  beq a0, a1, nowhere\n" with
  | exception Assemble.Error _ -> ()
  | _ -> Alcotest.fail "undefined local target must be rejected"

(* compression must never change program behaviour *)
let prop_compression_preserves_behaviour =
  QCheck.Test.make ~count:30 ~name:"compressed and uncompressed programs agree"
    QCheck.(small_list (int_range (-100) 100))
    (fun values ->
      let body =
        values
        |> List.map (fun v -> Printf.sprintf "  li t0, %d\n  add a0, a0, t0\n" v)
        |> String.concat ""
      in
      let src =
        ".text\n_start:\n  li a0, 0\n" ^ body ^ "  andi a0, a0, 255\n  li a7, 93\n  ecall\n"
      in
      let run compress =
        let obj = assemble_text ~compress src in
        let exe = Roload_link.Linker.link [ obj ] in
        let machine = Roload_machine.Machine.create Roload_machine.Config.default in
        let kernel =
          Roload_kernel.Kernel.create ~machine ~config:Roload_kernel.Kernel.default_config
        in
        let _p, outcome = Roload_kernel.Kernel.exec kernel exe in
        match outcome.Roload_kernel.Kernel.status with
        | Roload_kernel.Process.Exited n -> n
        | _ -> -1
      in
      run true = run false)

let suite =
  [
    Alcotest.test_case "parse basic" `Quick test_parse_basic;
    Alcotest.test_case "parse roload forms" `Quick test_parse_roload;
    Alcotest.test_case "parse directives" `Quick test_parse_directives;
    Alcotest.test_case "parse error carries line" `Quick test_parse_error_line;
    Alcotest.test_case "print/parse roundtrip" `Quick test_print_parse_roundtrip;
    Alcotest.test_case "li expansion golden" `Quick test_li_expansion_golden;
    Alcotest.test_case "compression shrinks code" `Quick test_compression_shrinks;
    Alcotest.test_case "branch relaxation" `Quick test_branch_relaxation;
    Alcotest.test_case "section attributes" `Quick test_section_attrs;
    Alcotest.test_case "relocations recorded" `Quick test_relocations_recorded;
    Alcotest.test_case "duplicate label rejected" `Quick test_duplicate_label_rejected;
    Alcotest.test_case "undefined branch target" `Quick test_undefined_branch_target;
    Seeded.to_alcotest prop_li_expansion;
    Seeded.to_alcotest prop_compression_preserves_behaviour;
  ]
