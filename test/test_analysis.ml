(* roload-lint tests: the verifier must be silent on everything the
   toolchain produces (all schemes, all toolchain sources, the workload
   suite) and must catch a planted violation at each of its three
   layers. *)

module Ir = Roload_ir.Ir
module Pass = Roload_passes.Pass
module Spec_suite = Roload_workloads.Spec_suite
module Toolchain = Core.Toolchain
module Diagnostic = Roload_analysis.Diagnostic
module Lint = Roload_analysis.Lint

let compile ~scheme ~name src =
  let options = { Toolchain.default_options with Toolchain.scheme } in
  Toolchain.compile ~options ~name src

let check_clean label artifacts =
  match Toolchain.lint artifacts with
  | [] -> ()
  | findings ->
    Alcotest.failf "%s: expected a clean lint, got:\n%s" label
      (Diagnostic.report_to_string findings)

let relint ?scheme artifacts =
  let scheme =
    match scheme with
    | Some s -> s
    | None -> artifacts.Toolchain.pass_report.Pass.scheme
  in
  Lint.run ~scheme ~ir:artifacts.Toolchain.ir_module ~exe:artifacts.Toolchain.exe

let has ~layer ~code findings =
  List.exists
    (fun d -> d.Diagnostic.layer = layer && d.Diagnostic.code = code)
    findings

let check_caught label ~layer ~code findings =
  Alcotest.(check bool)
    (Printf.sprintf "%s: [%s] %s reported" label (Diagnostic.layer_name layer) code)
    true (has ~layer ~code findings);
  Alcotest.(check int) (label ^ ": nonzero exit") 3 (Lint.exit_code findings);
  Alcotest.(check bool) (label ^ ": not ok") false (Lint.ok findings)

(* ---------- positive: every scheme, every toolchain source ---------- *)

let toolchain_sources =
  [
    ("fib", Test_toolchain.fib_src);
    ("fptr", Test_toolchain.fptr_src);
    ("vcall", Test_toolchain.vcall_src);
    ("methods", Test_toolchain.methods_src);
  ]

let test_clean_all_schemes () =
  List.iter
    (fun scheme ->
      List.iter
        (fun (name, src) ->
          let label = Printf.sprintf "%s/%s" (Pass.scheme_name scheme) name in
          check_clean label (compile ~scheme ~name src))
        toolchain_sources)
    Pass.all_schemes

let test_clean_workloads () =
  let scale = Spec_suite.test_scale in
  List.iter
    (fun (b : Spec_suite.benchmark) ->
      List.iter
        (fun scheme ->
          let label =
            Printf.sprintf "%s/%s" (Pass.scheme_name scheme) b.Spec_suite.name
          in
          check_clean label
            (compile ~scheme ~name:b.Spec_suite.name (b.Spec_suite.source ~scale)))
        [ Pass.Vcall; Pass.Icall ])
    Spec_suite.all

(* ---------- negative: layer 1 (IR completeness) ---------- *)

let first_icall_md m =
  let found = ref None in
  List.iter
    (fun f ->
      List.iter
        (fun b ->
          List.iter
            (function
              | Ir.Call_indirect { md; _ } when !found = None -> found := Some md
              | _ -> ())
            b.Ir.b_instrs)
        f.Ir.f_blocks)
    m.Ir.m_funcs;
  match !found with
  | Some md -> md
  | None -> Alcotest.fail "expected an indirect call in the module"

let test_catches_deannotated_icall () =
  let a = compile ~scheme:Pass.Icall ~name:"fptr" Test_toolchain.fptr_src in
  let md = first_icall_md a.Toolchain.ir_module in
  md.Ir.ic_roload_key <- None;
  check_caught "stripped icall annotation" ~layer:Diagnostic.Ir_completeness
    ~code:"unannotated-icall" (relint a)

(* ---------- negative: layer 2 (key dataflow / ro-store lint) ---------- *)

let test_catches_store_to_keyed_global () =
  let a = compile ~scheme:Pass.Icall ~name:"fptr" Test_toolchain.fptr_src in
  let m = a.Toolchain.ir_module in
  let victim =
    try
      List.find
        (fun g -> String.starts_with ~prefix:".rodata.key." g.Ir.g_section)
        m.Ir.m_globals
    with Not_found -> Alcotest.fail "expected a keyed read-only global"
  in
  let f = List.find (fun f -> f.Ir.f_name = "main") m.Ir.m_funcs in
  (match f.Ir.f_blocks with
  | [] -> Alcotest.fail "main has no blocks"
  | b :: rest ->
    let store =
      Ir.Store
        { src = Ir.Const 0L; addr = Ir.Global victim.Ir.g_name; offset = 0;
          width = Ir.W64 }
    in
    f.Ir.f_blocks <- { b with Ir.b_instrs = store :: b.Ir.b_instrs } :: rest);
  check_caught "store into keyed rodata" ~layer:Diagnostic.Key_dataflow
    ~code:"store-to-rodata" (relint a)

(* ---------- negative: layer 3 (machine cross-check) ---------- *)

let tamper_keyed_segment a f =
  let exe = a.Toolchain.exe in
  let tampered = ref false in
  let segments =
    List.map
      (fun (s : Roload_obj.Exe.segment) ->
        if s.Roload_obj.Exe.key > 0 && not !tampered then (
          tampered := true;
          f s)
        else s)
      exe.Roload_obj.Exe.segments
  in
  if not !tampered then Alcotest.fail "expected a keyed segment in the image";
  { exe with Roload_obj.Exe.segments }

let test_catches_segment_key_tamper () =
  let a = compile ~scheme:Pass.Icall ~name:"fptr" Test_toolchain.fptr_src in
  (* retarget the first keyed segment to an unrelated key: every ld.ro
     that named the original key now has no backing segment *)
  let exe =
    tamper_keyed_segment a (fun s -> { s with Roload_obj.Exe.key = 999 })
  in
  let findings =
    Lint.run ~scheme:Pass.Icall ~ir:a.Toolchain.ir_module ~exe
  in
  check_caught "retargeted segment key" ~layer:Diagnostic.Machine_check
    ~code:"roload-key-without-segment" findings

let test_catches_writable_keyed_segment () =
  let a = compile ~scheme:Pass.Icall ~name:"fptr" Test_toolchain.fptr_src in
  let exe =
    tamper_keyed_segment a (fun s ->
        { s with Roload_obj.Exe.perms = Roload_mem.Perm.rw })
  in
  let findings =
    Lint.run ~scheme:Pass.Icall ~ir:a.Toolchain.ir_module ~exe
  in
  check_caught "writable keyed segment" ~layer:Diagnostic.Machine_check
    ~code:"keyed-segment-not-read-only" findings

(* ---------- diagnostics rendering ---------- *)

let test_report_rendering () =
  Alcotest.(check string) "clean text report" "lint: 0 findings\n"
    (Diagnostic.report_to_string []);
  Alcotest.(check string) "clean json report" "{\"findings\":[],\"count\":0}\n"
    (Diagnostic.report_to_json []);
  let d =
    Diagnostic.make Diagnostic.Ir_completeness ~code:"unannotated-icall"
      ~site:"main/entry" "say \"%s\"" "hi"
  in
  Alcotest.(check string) "finding line"
    "[ir] unannotated-icall at main/entry: say \"hi\"" (Diagnostic.to_string d);
  let json = Diagnostic.report_to_json [ d ] in
  Alcotest.(check bool) "json escapes quotes" true
    (let re = Str.regexp_string "say \\\"hi\\\"" in
     try ignore (Str.search_forward re json 0); true with Not_found -> false);
  Alcotest.(check int) "clean exit code" 0 (Lint.exit_code []);
  Alcotest.(check bool) "clean ok" true (Lint.ok [])

(* Every JSON writer in the repo shares Roload_util.Json.escape; a string
   holding any byte 0x00-0x1f (diagnostic sites can carry raw bytes from
   fuzz-generated names) must escape to a fragment with no literal
   control characters, and unescaping it must give back the original. *)
let json_unescape s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i < n then
      if s.[i] = '\\' then begin
        (match s.[i + 1] with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | 'n' -> Buffer.add_char b '\n'
        | 'u' ->
          Buffer.add_char b
            (Char.chr (int_of_string ("0x" ^ String.sub s (i + 2) 4)))
        | c -> Alcotest.failf "unexpected escape \\%c" c);
        go (i + if s.[i + 1] = 'u' then 6 else 2)
      end
      else begin
        Buffer.add_char b s.[i];
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents b

let test_json_escape_roundtrip () =
  let controls = String.init 0x20 Char.chr in
  let tricky = "plain \"quoted\" back\\slash" ^ controls ^ "\ttab\nnl" in
  List.iter
    (fun s ->
      let e = Roload_util.Json.escape s in
      String.iter
        (fun c ->
          if Char.code c < 0x20 then
            Alcotest.failf "escape left a raw control byte 0x%02x in %S"
              (Char.code c) e)
        e;
      Alcotest.(check string)
        (Printf.sprintf "round-trips %S" s)
        s (json_unescape e))
    [ ""; "no escapes"; controls; tricky ]

let suite =
  [
    Alcotest.test_case "clean on all schemes x sources" `Quick test_clean_all_schemes;
    Alcotest.test_case "clean on the workload suite" `Quick test_clean_workloads;
    Alcotest.test_case "catches de-annotated icall (layer 1)" `Quick
      test_catches_deannotated_icall;
    Alcotest.test_case "catches store to keyed rodata (layer 2)" `Quick
      test_catches_store_to_keyed_global;
    Alcotest.test_case "catches segment key tamper (layer 3)" `Quick
      test_catches_segment_key_tamper;
    Alcotest.test_case "catches writable keyed segment (layer 3)" `Quick
      test_catches_writable_keyed_segment;
    Alcotest.test_case "report rendering" `Quick test_report_rendering;
    Alcotest.test_case "json escape round-trips control chars" `Quick
      test_json_escape_roundtrip;
  ]
