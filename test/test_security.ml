(* Security-evaluation tests: the attack corpus outcomes per scheme —
   the machine-checked version of paper §V-C2 and §V-D. *)

module Pass = Roload_passes.Pass
module Attack = Roload_security.Attack
module Eval = Roload_security.Eval

let exe_cache : (Pass.scheme, Roload_obj.Exe.t) Hashtbl.t = Hashtbl.create 8

let victim scheme =
  match Hashtbl.find_opt exe_cache scheme with
  | Some exe -> exe
  | None ->
    let exe =
      Core.Toolchain.compile_exe
        ~options:{ Core.Toolchain.default_options with scheme }
        ~name:"victim" Roload_security.Victim.source
    in
    Hashtbl.add exe_cache scheme exe;
    exe

let outcome scheme kind = Eval.run ~exe:(victim scheme) kind

let check_hijacked name o =
  match o with
  | Attack.Hijacked -> ()
  | _ -> Alcotest.failf "%s: expected hijack, got %s" name (Attack.outcome_name o)

let check_blocked name o =
  if not (Attack.is_blocked o) then
    Alcotest.failf "%s: expected blocked, got %s" name (Attack.outcome_name o)

let check_blocked_roload name o =
  match o with
  | Attack.Blocked_roload -> ()
  | _ -> Alcotest.failf "%s: expected a ROLoad fault, got %s" name (Attack.outcome_name o)

let test_victim_benign () =
  List.iter
    (fun scheme ->
      let m = Core.System.run ~variant:Core.System.Processor_kernel_modified (victim scheme) in
      Alcotest.(check string)
        (Pass.scheme_name scheme ^ " benign output")
        Roload_security.Victim.benign_output m.Core.System.output)
    Pass.all_schemes

let test_unprotected_all_hijacked () =
  List.iter
    (fun kind ->
      check_hijacked (Attack.kind_name kind) (outcome Pass.Unprotected kind))
    Attack.all_kinds

let test_vcall_blocks_vtable_attacks () =
  check_blocked_roload "injection" (outcome Pass.Vcall Attack.Vtable_injection);
  check_blocked_roload "reuse" (outcome Pass.Vcall Attack.Vtable_corruption_reuse);
  (* out of scope: function pointers *)
  check_hijacked "fptr out of scope" (outcome Pass.Vcall Attack.Fptr_overwrite)

let test_vtint_weaker_than_vcall () =
  (* VTint stops the injected writable vtable... *)
  check_blocked "injection" (outcome Pass.Vtint_baseline Attack.Vtable_injection);
  (* ...but accepts any read-only data as a vtable (paper: VCall is
     strictly stronger) *)
  check_hijacked "reuse passes range check"
    (outcome Pass.Vtint_baseline Attack.Vtable_corruption_reuse)

let test_icall_type_policy () =
  check_blocked "overwrite with code address" (outcome Pass.Icall Attack.Fptr_overwrite);
  check_blocked_roload "wrong type" (outcome Pass.Icall Attack.Fptr_type_confusion);
  check_blocked_roload "vtable injection" (outcome Pass.Icall Attack.Vtable_injection)

let test_icall_unified_key_tradeoff () =
  (* the unified vtable key cannot distinguish hierarchies — the locality
     trade-off of paper §V-C1b *)
  check_hijacked "cross-hierarchy vtable reuse"
    (outcome Pass.Icall Attack.Vtable_corruption_reuse)

let test_cfi_blocks_labelled () =
  check_blocked "injection" (outcome Pass.Cfi_baseline Attack.Vtable_injection);
  check_blocked "reuse" (outcome Pass.Cfi_baseline Attack.Vtable_corruption_reuse);
  check_blocked "overwrite" (outcome Pass.Cfi_baseline Attack.Fptr_overwrite);
  check_blocked "type confusion" (outcome Pass.Cfi_baseline Attack.Fptr_type_confusion)

(* the paper's §V-D residual risk: same-key pointee reuse survives every
   scheme (allowlist members stay mutually reachable) *)
let test_pointee_reuse_residual () =
  List.iter
    (fun scheme ->
      check_hijacked
        (Pass.scheme_name scheme ^ " pointee reuse")
        (outcome scheme Attack.Pointee_reuse_same_key))
    Pass.all_schemes

(* ---- the full attack-kind × scheme outcome matrix ----

   Every (kind, scheme) pair pinned in one inline table: a policy change
   anywhere shows up as a two-table diff rather than a lone assertion
   failure.  Layout-dependent fault detail (the SIGBUS address under
   ICall's fptr overwrite) is truncated to the stable fault class. *)

let cell = function
  | Attack.Hijacked -> "HIJACKED"
  | Attack.Blocked_roload -> "blocked:roload"
  | Attack.Blocked_other d ->
    let d =
      match String.index_opt d ' ' with Some i -> String.sub d 0 i | None -> d
    in
    "blocked:" ^ d
  | Attack.No_effect -> "no-effect"

let render_matrix rows =
  let header = "attack" :: List.map Pass.scheme_name Pass.all_schemes in
  let table =
    header :: List.map (fun (kind, cells) -> Attack.kind_name kind :: cells) rows
  in
  let ncols = List.length header in
  let width c =
    List.fold_left (fun w row -> max w (String.length (List.nth row c))) 0 table
  in
  let widths = List.init ncols width in
  String.concat ""
    (List.map
       (fun row ->
         String.concat " | "
           (List.map2 (fun w c -> Printf.sprintf "%-*s" w c) widths row)
         ^ "\n")
       table)

let expected_matrix =
  [
    (Attack.Vtable_injection,
     [ "HIJACKED"; "blocked:roload"; "blocked:roload"; "blocked:abort"; "blocked:abort" ]);
    (Attack.Vtable_corruption_reuse,
     [ "HIJACKED"; "blocked:roload"; "HIJACKED"; "HIJACKED"; "blocked:abort" ]);
    (Attack.Fptr_overwrite,
     [ "HIJACKED"; "HIJACKED"; "blocked:other:SIGBUS"; "HIJACKED"; "blocked:abort" ]);
    (Attack.Fptr_type_confusion,
     [ "HIJACKED"; "HIJACKED"; "blocked:roload"; "HIJACKED"; "blocked:abort" ]);
    (Attack.Pointee_reuse_same_key,
     [ "HIJACKED"; "HIJACKED"; "HIJACKED"; "HIJACKED"; "HIJACKED" ]);
  ]

let test_full_outcome_matrix () =
  let actual =
    List.map
      (fun kind ->
        (kind, List.map (fun scheme -> cell (outcome scheme kind)) Pass.all_schemes))
      Attack.all_kinds
  in
  Alcotest.(check string)
    "attack-kind × scheme outcomes"
    (render_matrix expected_matrix)
    (render_matrix actual)

(* The snapshot-seeded corpus (boot once, fork per attack) must report
   the exact matrix the boot-every-attack-from-reset path reports, on
   every scheme. *)
let test_corpus_seeding_equivalence () =
  List.iter
    (fun scheme ->
      let exe = victim scheme in
      let seeded = Eval.run_corpus ~exe () in
      let reset = Eval.run_corpus ~from_reset:true ~exe () in
      List.iter2
        (fun (ka, oa) (kb, ob) ->
          Alcotest.(check string)
            (Printf.sprintf "%s/%s kinds align" (Pass.scheme_name scheme)
               (Attack.kind_name ka))
            (Attack.kind_name ka) (Attack.kind_name kb);
          Alcotest.(check string)
            (Printf.sprintf "%s/%s verdict identical" (Pass.scheme_name scheme)
               (Attack.kind_name ka))
            (cell ob) (cell oa))
        seeded reset)
    Pass.all_schemes

let test_matrix_driver () =
  let r = Core.Experiments.security () in
  Alcotest.(check int) "5 schemes" (List.length Pass.all_schemes)
    (List.length r.Core.Experiments.matrix);
  List.iter
    (fun (_, results) ->
      Alcotest.(check int) "5 attacks" (List.length Attack.all_kinds) (List.length results))
    r.Core.Experiments.matrix

let suite =
  [
    Alcotest.test_case "victim benign under all schemes" `Quick test_victim_benign;
    Alcotest.test_case "unprotected: all hijacked" `Quick test_unprotected_all_hijacked;
    Alcotest.test_case "vcall blocks vtable attacks" `Quick test_vcall_blocks_vtable_attacks;
    Alcotest.test_case "vtint weaker than vcall" `Quick test_vtint_weaker_than_vcall;
    Alcotest.test_case "icall type-based policy" `Quick test_icall_type_policy;
    Alcotest.test_case "icall unified-key tradeoff" `Quick test_icall_unified_key_tradeoff;
    Alcotest.test_case "cfi blocks labelled attacks" `Quick test_cfi_blocks_labelled;
    Alcotest.test_case "pointee reuse residual (V-D)" `Quick test_pointee_reuse_residual;
    Alcotest.test_case "full attack × scheme matrix" `Quick test_full_outcome_matrix;
    Alcotest.test_case "snapshot-seeded corpus equals from-reset" `Quick
      test_corpus_seeding_equivalence;
    Alcotest.test_case "matrix driver" `Quick test_matrix_driver;
  ]
