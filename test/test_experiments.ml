(* Experiment-driver tests: each table/figure driver produces the paper's
   qualitative shape on a reduced workload set. *)

module Suite = Roload_workloads.Spec_suite
module Pass = Roload_passes.Pass
module Exp = Core.Experiments

let small = [ Option.get (Suite.find "xalancbmk"); Option.get (Suite.find "gobmk") ]

let test_table1_table2 () =
  Alcotest.(check int) "table1 rows" 3 (List.length (Roload_util.Table.rows (Exp.table1 ())));
  Alcotest.(check bool) "table2 nonempty" true
    (Roload_util.Table.rows (Exp.table2 ()) <> [])

let test_table3 () =
  let r = Exp.table3 () in
  Alcotest.(check int) "two rows" 2 (List.length (Roload_util.Table.rows r.Exp.table));
  let c = r.Exp.synth.Roload_hw.Synth.comparison in
  Alcotest.(check bool) "core LUT growth within paper bound" true
    (c.Roload_hw.Area.lut_increase_core_pct > 0.0
    && c.Roload_hw.Area.lut_increase_core_pct < 3.32)

(* §V-B: the ROLoad system runs unmodified binaries at ~0% overhead *)
let test_section5b_zero_overhead () =
  let r = Exp.section5b ~scale:1 ~benchmarks:small () in
  Alcotest.(check bool) "processor overhead < 0.1%" true
    (abs_float r.Exp.avg_runtime_overhead_processor < 0.1);
  Alcotest.(check bool) "kernel overhead < 0.1%" true
    (abs_float r.Exp.avg_runtime_overhead_kernel < 0.1)

(* Figure 3 shape: VCall cheap, VTint substantially more expensive *)
let test_figure3_shape () =
  let r = Exp.figure3 ~scale:1 () in
  let vcall = List.assoc Pass.Vcall r.Exp.runtime_averages in
  let vtint = List.assoc Pass.Vtint_baseline r.Exp.runtime_averages in
  Alcotest.(check bool) "VCall below 1%" true (vcall < 1.0);
  Alcotest.(check bool) "VTint > 3x VCall" true (vtint > 3.0 *. vcall);
  (* memory: VTint's code growth shows up, as in the paper *)
  let vtint_mem = List.assoc Pass.Vtint_baseline r.Exp.memory_averages in
  Alcotest.(check bool) "VTint memory overhead positive" true (vtint_mem > 0.0)

(* Figures 4/5 shape: ICall ~free, CFI clearly more expensive *)
let test_figure45_shape () =
  let r = Exp.figure45 ~scale:1 ~benchmarks:small () in
  let icall = List.assoc Pass.Icall r.Exp.runtime_averages in
  let cfi = List.assoc Pass.Cfi_baseline r.Exp.runtime_averages in
  Alcotest.(check bool) "ICall below 1%" true (icall < 1.0);
  Alcotest.(check bool) "CFI above ICall" true (cfi > icall)

let test_ablation_tables () =
  Alcotest.(check bool) "compressed saves bytes" true
    (List.for_all
       (fun row ->
         match row with
         | [ _; unc; com; _ ] -> int_of_string com < int_of_string unc
         | _ -> true)
       (Roload_util.Table.rows (Exp.ablation_compressed ~benchmarks:small ())));
  let sc = Exp.ablation_separate_code () in
  match Roload_util.Table.rows sc with
  | [ [ _; with_sc ]; [ _; without_sc ] ] ->
    Alcotest.(check string) "separate-code runs" "exit 0" with_sc;
    Alcotest.(check bool) "merged layout faults" true
      (String.length without_sc > 7 && String.sub without_sc 0 7 = "SIGSEGV")
  | _ -> Alcotest.fail "unexpected ablation table shape"

(* Satellite (roload-chaos): a worker-domain exception re-raised by
   Parallel.map must carry the worker's original backtrace — the frames
   must still name this file, not just the re-raise site in the pool. *)
let boom_cell x = if x = 2 then failwith "boom from worker" else x

let test_parallel_backtrace_preserved () =
  Printexc.record_backtrace true;
  List.iter
    (fun jobs ->
      match Core.Parallel.map ~jobs boom_cell [ 0; 1; 2; 3 ] with
      | _ -> Alcotest.fail "expected the worker exception to re-raise"
      | exception Failure msg ->
        let bt = Printexc.get_raw_backtrace () in
        Alcotest.(check string) "worker exception re-raised" "boom from worker" msg;
        Alcotest.(check bool)
          (Printf.sprintf "-j%d: backtrace nonempty" jobs)
          true
          (Printexc.raw_backtrace_length bt > 0);
        Alcotest.(check bool)
          (Printf.sprintf "-j%d: backtrace names the raising cell" jobs)
          true
          (let s = Printexc.raw_backtrace_to_string bt in
           let contains hay needle =
             let n = String.length needle in
             let rec go i =
               i + n <= String.length hay
               && (String.sub hay i n = needle || go (i + 1))
             in
             go 0
           in
           contains s "test_experiments"))
    [ 1; 4 ]

(* The exception barrier itself: failures land in their slot, successes
   are unaffected. *)
let test_map_result_barrier () =
  let r = Core.Parallel.map_result ~jobs:4 boom_cell [ 0; 1; 2; 3 ] in
  match r with
  | [ Ok 0; Ok 1; Error (Failure m, _); Ok 3 ] ->
    Alcotest.(check string) "error in its slot" "boom from worker" m
  | _ -> Alcotest.fail "unexpected map_result shape"

let suite =
  [
    Alcotest.test_case "tables 1 & 2" `Quick test_table1_table2;
    Alcotest.test_case "table 3" `Quick test_table3;
    Alcotest.test_case "section V-B ~0% overhead" `Slow test_section5b_zero_overhead;
    Alcotest.test_case "figure 3 shape" `Slow test_figure3_shape;
    Alcotest.test_case "figures 4/5 shape" `Slow test_figure45_shape;
    Alcotest.test_case "ablations" `Slow test_ablation_tables;
    Alcotest.test_case "parallel map preserves backtraces" `Quick
      test_parallel_backtrace_preserved;
    Alcotest.test_case "map_result exception barrier" `Quick test_map_result_barrier;
  ]
