(* Regression tests for the kernel's syscall error paths: the silent
   failures this PR fixed.  Each test encodes the pre-fix misbehavior —
   write() swallowing an unmapped buffer, mprotect() mutating pages
   before rejecting the range, mmap() walking into the stack, and
   partial out-of-frames failures leaving half-mapped regions behind. *)

module Kernel = Roload_kernel.Kernel
module Process = Roload_kernel.Process
module Syscall = Roload_kernel.Syscall
module Machine = Roload_machine.Machine
module Config = Roload_machine.Config
module Linker = Roload_link.Linker
module Page_table = Roload_mem.Page_table
module Pte = Roload_mem.Pte
module Perm = Roload_mem.Perm

let build src =
  Linker.link [ Roload_asm.Assemble.assemble (Roload_asm.Asm_parser.parse src) ]

let exec ?(machine_config = Config.default) src =
  let machine = Machine.create machine_config in
  let kernel = Kernel.create ~machine ~config:Kernel.default_config in
  Kernel.exec kernel (build src)

let status_is_exit n (o : Kernel.run_outcome) =
  match o.Kernel.status with
  | Process.Exited m -> m = n
  | Process.Killed _ | Process.Running -> false

(* ---- write(): buffer straddling the last mapped page => EFAULT ----

   mmap one page (lands at the deterministic mmap base), then write()
   16 bytes starting 6 bytes before its end.  The old kernel copied
   nothing, charged the copy cycles and returned len; the fixed one
   returns EFAULT (-14) and the console stays empty. *)
let write_straddle_prog =
  Printf.sprintf
    {|
.text
_start:
  # mmap(0, 4096, PROT_READ|PROT_WRITE, 0, key=0) -> t0
  li a0, 0
  li a1, 4096
  li a2, 3
  li a3, 0
  li a4, 0
  li a7, 222
  ecall
  mv t0, a0
  # write(1, t0+4090, 16): last 10 bytes are unmapped
  li a0, 1
  li t1, 4090
  add a1, t0, t1
  li a2, 16
  li a7, 64
  ecall
  li t2, %d
  li t3, 0
  bne a0, t2, write_done
  li t3, 1
write_done:
  mv a0, t3
  li a7, 93
  ecall
|}
    Syscall.efault

let test_write_efault () =
  let p, o = exec write_straddle_prog in
  Alcotest.(check bool) "write returns EFAULT" true (status_is_exit 1 o);
  Alcotest.(check string) "nothing reached the console" "" (Process.output p)

(* The EFAULT path must also skip the per-byte copy charge.  A huge
   len from a bad buffer cost len/16 cycles on the old kernel (65536
   cycles here); the fixed kernel fails the copy before charging. *)
let write_huge_efault_prog =
  Printf.sprintf
    {|
.text
_start:
  li a0, 0
  li a1, 4096
  li a2, 3
  li a3, 0
  li a4, 0
  li a7, 222
  ecall
  mv t0, a0
  # write(1, t0+4090, 1048576): mostly unmapped
  li a0, 1
  li t1, 4090
  add a1, t0, t1
  li a2, 1048576
  li a7, 64
  ecall
  li t2, %d
  li t3, 0
  bne a0, t2, huge_done
  li t3, 1
huge_done:
  mv a0, t3
  li a7, 93
  ecall
|}
    Syscall.efault

let test_write_efault_no_copy_charge () =
  let _p, o = exec write_huge_efault_prog in
  Alcotest.(check bool) "write returns EFAULT" true (status_is_exit 1 o);
  (* the whole program is a few dozen instructions plus two syscalls;
     the old kernel added len/16 = 65536 copy cycles on this path *)
  Alcotest.(check bool) "no copy cycles charged" true (o.Kernel.cycles < 50_000L)

(* ---- mprotect(): range ending in an unmapped page is all-or-nothing ----

   mmap one writable key-0 page, then mprotect() a two-page range (the
   second page is unmapped) asking for read-only with key 9.  The old
   kernel re-permed and re-keyed the first page before noticing, then
   returned EINVAL; the fixed one validates the whole range first, so
   the pre-call PTE must survive verbatim. *)
let mprotect_straddle_prog =
  Printf.sprintf
    {|
.text
_start:
  # mmap(0, 4096, PROT_READ|PROT_WRITE, 0, key=0) -> t0
  li a0, 0
  li a1, 4096
  li a2, 3
  li a3, 0
  li a4, 0
  li a7, 222
  ecall
  mv t0, a0
  # mprotect(t0, 8192, PROT_READ, key=9): second page unmapped
  mv a0, t0
  li a1, 8192
  li a2, 1
  li a3, 9
  li a7, 226
  ecall
  li t2, %d
  li t3, 0
  bne a0, t2, mp_done
  li t3, 1
mp_done:
  mv a0, t3
  li a7, 93
  ecall
|}
    Syscall.einval

let test_mprotect_all_or_nothing () =
  let p, o = exec mprotect_straddle_prog in
  Alcotest.(check bool) "mprotect returns EINVAL" true (status_is_exit 1 o);
  match Page_table.walk (Process.page_table p) Process.mmap_base with
  | Error _ -> Alcotest.fail "mapped page vanished"
  | Ok w ->
    Alcotest.(check bool) "page still writable" true (Pte.writable w.Page_table.pte);
    Alcotest.(check int) "key untouched" 0 (Pte.key w.Page_table.pte)

(* ---- mmap(): the region is capped below the stack guard ----

   Fill the entire mmap region in one call, then ask for one more page:
   the old kernel's unbounded cursor would hand out addresses marching
   into the stack; the fixed one returns ENOMEM. *)
let mmap_guard_prog =
  Printf.sprintf
    {|
.text
_start:
  # mmap the whole region up to the stack guard
  li a0, 0
  li a1, %d
  li a2, 3
  li a3, 0
  li a4, 0
  li a7, 222
  ecall
  blt a0, zero, guard_fail
  # one more page must be refused
  li a0, 0
  li a1, 4096
  li a2, 3
  li a3, 0
  li a4, 0
  li a7, 222
  ecall
  li t2, %d
  li t3, 0
  bne a0, t2, guard_done
  li t3, 1
guard_done:
  mv a0, t3
  li a7, 93
  ecall
guard_fail:
  li a0, 2
  li a7, 93
  ecall
|}
    (Process.mmap_limit - Process.mmap_base)
    Syscall.enomem

let test_mmap_stack_guard () =
  let p, o = exec mmap_guard_prog in
  Alcotest.(check bool) "second mmap returns ENOMEM" true (status_is_exit 1 o);
  (* the guard band below the stack stayed unmapped *)
  (match Page_table.walk (Process.page_table p) Process.mmap_limit with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "guard page got mapped");
  (* ... and the region really was filled right up to the limit *)
  match Page_table.walk (Process.page_table p) (Process.mmap_limit - Process.page) with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "last in-bounds page missing"

(* ---- out-of-frames mid-mmap: the fresh range is unwound ----

   On a machine with only 2 MiB of physical memory (512 frames, ~75 of
   which the loader uses) a 500-page mmap runs out of frames partway
   through.  The old kernel left the first ~430 pages mapped and the
   accounting inflated; the fixed one unwinds them, rolls the
   accounting back and retracts the region cursor. *)
let small_machine = { Config.default with Config.phys_mem_bytes = 2 * 1024 * 1024 }

let mmap_unwind_prog =
  Printf.sprintf
    {|
.text
_start:
  # mmap(0, 500 pages, rw): fails partway through on a 512-frame machine
  li a0, 0
  li a1, 2048000
  li a2, 3
  li a3, 0
  li a4, 0
  li a7, 222
  ecall
  li t2, %d
  li t3, 0
  bne a0, t2, uw_done
  li t3, 1
uw_done:
  mv a0, t3
  li a7, 93
  ecall
|}
    Syscall.enomem

let test_mmap_out_of_frames_unwind () =
  let p, o = exec ~machine_config:small_machine mmap_unwind_prog in
  Alcotest.(check bool) "mmap returns ENOMEM" true (status_is_exit 1 o);
  (* all-or-nothing: nothing of the failed region stays mapped *)
  (match Page_table.walk (Process.page_table p) Process.mmap_base with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "partial mmap left pages mapped");
  (* accounting rolled back to exactly the page-table truth *)
  Alcotest.(check int) "accounting matches page table"
    (Page_table.mapped_pages (Process.page_table p))
    (Process.mapped_pages p);
  (* the cursor was retracted: the next reservation reuses the base *)
  match Process.alloc_mmap_region p 1 with
  | Some addr -> Alcotest.(check int) "cursor retracted" Process.mmap_base addr
  | None -> Alcotest.fail "cursor not retracted"

(* ---- out-of-frames mid-brk: same unwind, old break preserved ---- *)
let brk_unwind_prog = {|
.text
_start:
  # t0 = current brk
  li a0, 0
  li a7, 214
  ecall
  mv t0, a0
  # grow by 500 pages: out of frames partway through
  li t1, 2048000
  add a0, t0, t1
  li a7, 214
  ecall
  # a failed grow returns the old break unchanged
  li t3, 0
  bne a0, t0, brk_done
  li t3, 1
brk_done:
  mv a0, t3
  li a7, 93
  ecall
|}

let test_brk_out_of_frames_unwind () =
  let p, o = exec ~machine_config:small_machine brk_unwind_prog in
  Alcotest.(check bool) "brk reports the old break" true (status_is_exit 1 o);
  (* no page past the (old) break stays mapped *)
  let first_fresh = (Process.brk p + Process.page - 1) / Process.page * Process.page in
  (match Page_table.walk (Process.page_table p) first_fresh with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "partial brk left pages mapped");
  Alcotest.(check int) "accounting matches page table"
    (Page_table.mapped_pages (Process.page_table p))
    (Process.mapped_pages p)

let suite =
  [
    Alcotest.test_case "write: straddling buffer => EFAULT, empty console" `Quick
      test_write_efault;
    Alcotest.test_case "write: EFAULT path charges no copy cycles" `Quick
      test_write_efault_no_copy_charge;
    Alcotest.test_case "mprotect: invalid range leaves PTEs untouched" `Quick
      test_mprotect_all_or_nothing;
    Alcotest.test_case "mmap: region capped below the stack guard" `Quick
      test_mmap_stack_guard;
    Alcotest.test_case "mmap: out-of-frames failure unwinds the range" `Quick
      test_mmap_out_of_frames_unwind;
    Alcotest.test_case "brk: out-of-frames failure unwinds the range" `Quick
      test_brk_out_of_frames_unwind;
  ]
