(* Machine tests: ALU semantics (golden + properties against reference
   definitions), executor behaviour, timing counters. *)

module Alu = Roload_machine.Alu
module Inst = Roload_isa.Inst
module Machine = Roload_machine.Machine
module Config = Roload_machine.Config
module Cpu = Roload_machine.Cpu

let check_i64 = Alcotest.(check int64)

let test_alu_golden () =
  check_i64 "add wrap" Int64.min_int (Alu.op Inst.Add Int64.max_int 1L);
  check_i64 "slt true" 1L (Alu.op Inst.Slt (-1L) 0L);
  check_i64 "sltu: -1 is huge" 0L (Alu.op Inst.Sltu (-1L) 0L);
  check_i64 "sra sign" (-1L) (Alu.op Inst.Sra (-1L) 63L);
  check_i64 "srl logical" 1L (Alu.op Inst.Srl Int64.min_int 63L);
  check_i64 "sll shamt masked" 2L (Alu.op Inst.Sll 1L 65L);
  (* W-forms truncate to 32 bits and sign-extend *)
  check_i64 "addw wrap" (-2147483648L) (Alu.op_w Inst.Addw 2147483647L 1L);
  check_i64 "sllw" (-2147483648L) (Alu.op_w Inst.Sllw 1L 31L);
  check_i64 "srlw zero-extends 32" 1L (Alu.op_w Inst.Srlw 0x80000000L 31L)

let test_div_edge_cases () =
  (* RISC-V: div by zero -> -1, rem by zero -> dividend *)
  check_i64 "div/0" (-1L) (Alu.mulop Inst.Div 42L 0L);
  check_i64 "rem/0" 42L (Alu.mulop Inst.Rem 42L 0L);
  check_i64 "divu/0" (-1L) (Alu.mulop Inst.Divu 42L 0L);
  check_i64 "remu/0" 42L (Alu.mulop Inst.Remu 42L 0L);
  (* signed overflow: MIN / -1 -> MIN, rem -> 0 *)
  check_i64 "min/-1" Int64.min_int (Alu.mulop Inst.Div Int64.min_int (-1L));
  check_i64 "min rem -1" 0L (Alu.mulop Inst.Rem Int64.min_int (-1L))

let test_mulh_golden () =
  (* (2^63 - 1)^2 = 0x3FFFFFFFFFFFFFFF0000000000000001 *)
  check_i64 "mulhu max*max" 0xFFFFFFFFFFFFFFFEL
    (Alu.mulhu (-1L) (-1L)) (* (2^64-1)^2 >> 64 = 2^64 - 2 *);
  check_i64 "mulh -1*-1" 0L (Alu.mulh (-1L) (-1L));
  check_i64 "mulh max*max" 0x3FFFFFFFFFFFFFFFL (Alu.mulh Int64.max_int Int64.max_int);
  check_i64 "mulhsu -1 * maxu" (-1L) (Alu.mulhsu (-1L) (-1L))

(* property: mulhu agrees with a 32-bit-limb reference on products of
   32-bit values (where the high word is computable directly) *)
let prop_mulhu_small =
  QCheck.Test.make ~count:1000 ~name:"mulhu of 32-bit values is 0"
    QCheck.(pair (int_bound 0x3FFFFFFF) (int_bound 0x3FFFFFFF))
    (fun (a, b) -> Alu.mulhu (Int64.of_int a) (Int64.of_int b) = 0L)

let prop_div_rem_identity =
  QCheck.Test.make ~count:1000 ~name:"a = div*b + rem (b <> 0, no overflow)"
    QCheck.(pair int64 int64)
    (fun (a, b) ->
      QCheck.assume (b <> 0L);
      QCheck.assume (not (a = Int64.min_int && b = -1L));
      let d = Alu.mulop Inst.Div a b and r = Alu.mulop Inst.Rem a b in
      Int64.add (Int64.mul d b) r = a)

let prop_mulh_shift_identity =
  QCheck.Test.make ~count:1000 ~name:"mulh(a, 2^k) = a >> (64-k) arithmetic-ish"
    QCheck.(pair int64 (int_range 1 62))
    (fun (a, k) ->
      (* a * 2^k as 128-bit: high word = a >> (64-k) arithmetically *)
      Alu.mulh a (Int64.shift_left 1L k) = Int64.shift_right a (64 - k))

(* property: W-forms equal truncating the 64-bit op to 32 bits *)
let prop_addw_truncates =
  QCheck.Test.make ~count:1000 ~name:"addw = sext32 (add)"
    QCheck.(pair int64 int64)
    (fun (a, b) ->
      Alu.op_w Inst.Addw a b = Int64.of_int32 (Int64.to_int32 (Int64.add a b)))

(* executor-level: counters advance; x0 stays zero *)
let test_x0_hardwired () =
  let cpu = Cpu.create () in
  Cpu.set cpu Roload_isa.Reg.zero 42L;
  check_i64 "x0 ignores writes" 0L (Cpu.get cpu Roload_isa.Reg.zero);
  Cpu.set cpu Roload_isa.Reg.a0 7L;
  check_i64 "a0 written" 7L (Cpu.get cpu Roload_isa.Reg.a0)

let test_machine_requires_mmu () =
  let m = Machine.create Config.default in
  match Machine.step m with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "step without an address space must fail"

let test_config_rows () =
  let rows = Config.rows Config.default in
  Alcotest.(check bool) "has ISA row" true (List.mem_assoc "ISA" rows);
  Alcotest.(check bool) "roload on by default" true Config.default.Config.roload_processor;
  Alcotest.(check bool) "baseline has no roload" false Config.baseline.Config.roload_processor

let suite =
  [
    Alcotest.test_case "alu golden" `Quick test_alu_golden;
    Alcotest.test_case "division edge cases" `Quick test_div_edge_cases;
    Alcotest.test_case "mulh golden" `Quick test_mulh_golden;
    Alcotest.test_case "x0 hardwired" `Quick test_x0_hardwired;
    Alcotest.test_case "machine needs address space" `Quick test_machine_requires_mmu;
    Alcotest.test_case "config rows" `Quick test_config_rows;
    Seeded.to_alcotest prop_mulhu_small;
    Seeded.to_alcotest prop_div_rem_identity;
    Seeded.to_alcotest prop_mulh_shift_identity;
    Seeded.to_alcotest prop_addw_truncates;
  ]
