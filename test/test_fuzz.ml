(* Fuzzer tests: corpus replay (every checked-in reproducer must still
   conform to its pinned per-scheme behavior), a small fixed-seed
   differential run, and the oracle mutation self-check.

   The corpus files live in corpus/ at the repo root; dune copies them
   into the test sandbox via the deps glob in test/dune. *)

module Pass = Roload_passes.Pass
module Trapclass = Roload_security.Trapclass
module Gen = Roload_fuzz.Gen
module Diff = Roload_fuzz.Diff
module Ir_eval = Roload_fuzz.Ir_eval
module Prng = Roload_util.Prng

let corpus_dir = "../corpus"

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let behavior_lines behaviors =
  String.concat ""
    (List.map
       (fun (s, (b : Ir_eval.behavior)) ->
         Printf.sprintf "%s\t%s\t%s\n" (Pass.scheme_name s)
           (Trapclass.stop_name b.Ir_eval.stop)
           (String.escaped b.Ir_eval.output))
       behaviors)

let corpus_entries () =
  if not (Sys.file_exists corpus_dir) then []
  else
    Sys.readdir corpus_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".mc")
    |> List.sort compare

let test_corpus_replay () =
  let entries = corpus_entries () in
  if List.length entries < 8 then
    Alcotest.failf "corpus too small: %d entries (expected >= 8)"
      (List.length entries);
  List.iter
    (fun entry ->
      let path = Filename.concat corpus_dir entry in
      let source = read_file path in
      match Diff.run_source ~name:entry source with
      | Diff.Skipped r -> Alcotest.failf "%s: skipped (%s)" entry r
      | Diff.Divergent d ->
        Alcotest.failf "%s: divergence under %s at %s\n  expected %s\n  actual   %s"
          entry (Pass.scheme_name d.Diff.dv_scheme) d.Diff.dv_stage
          d.Diff.dv_expected d.Diff.dv_actual
      | Diff.Agree behaviors ->
        let expected_path =
          Filename.concat corpus_dir (Filename.remove_extension entry ^ ".expected")
        in
        Alcotest.(check string)
          (entry ^ " pinned behavior")
          (read_file expected_path) (behavior_lines behaviors))
    entries

(* every reproducer must stay a minimal, readable test: the main body
   (past the declarations) within the shrinker's reach *)
let test_corpus_entries_small () =
  List.iter
    (fun entry ->
      let source = read_file (Filename.concat corpus_dir entry) in
      let lines =
        List.filter
          (fun l -> String.trim l <> "")
          (String.split_on_char '\n' source)
      in
      if List.length lines > 25 then
        Alcotest.failf "%s: %d non-blank lines (shrunk reproducers must be <= 25)"
          entry (List.length lines))
    (corpus_entries ())

(* a short fixed-seed differential run: the generator, oracle, both
   engines and all schemes agree on freshly generated programs *)
let test_fixed_seed_agreement () =
  let rng = Prng.create 406L in
  for _ = 1 to 4 do
    let seed = Prng.next_int64 rng in
    let prog = Gen.generate ~seed ~size:2 in
    match Diff.run_source ~name:"fixed-seed" (Gen.to_source prog) with
    | Diff.Agree _ -> ()
    | Diff.Skipped r -> Alcotest.failf "seed %Ld: skipped (%s)" seed r
    | Diff.Divergent d ->
      Alcotest.failf "seed %Ld: divergence under %s at %s\n  expected %s\n  actual   %s"
        seed (Pass.scheme_name d.Diff.dv_scheme) d.Diff.dv_stage d.Diff.dv_expected
        d.Diff.dv_actual
  done

(* the oracle self-check in miniature: a planted ICall miscompile (the
   GFPT redirect dropped from one call site) must be flagged *)
let test_planted_miscompile_caught () =
  let rng = Prng.create 11L in
  let caught = ref false in
  let i = ref 0 in
  while (not !caught) && !i < 40 do
    incr i;
    let seed = Prng.next_int64 rng in
    let prog = Gen.generate ~seed ~size:3 in
    match
      Diff.run_source ~schemes:[ Pass.Icall ] ~sabotage:Diff.sabotage_drop_gfpt
        ~name:"sabotage" (Gen.to_source prog)
    with
    | Diff.Divergent _ -> caught := true
    | Diff.Agree _ | Diff.Skipped _ -> ()
  done;
  if not !caught then
    Alcotest.failf "planted GFPT miscompile not caught within %d cases" !i

let suite =
  [
    Alcotest.test_case "corpus replay (pinned behaviors)" `Quick test_corpus_replay;
    Alcotest.test_case "corpus entries stay small" `Quick test_corpus_entries_small;
    Alcotest.test_case "fixed-seed differential agreement" `Slow test_fixed_seed_agreement;
    Alcotest.test_case "planted miscompile caught" `Slow test_planted_miscompile_caught;
  ]
