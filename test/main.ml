let () =
  Alcotest.run "roload"
    [
      ("bits", Test_bits.suite);
      ("isa", Test_isa.suite);
      ("mem", Test_mem.suite);
      ("ir", Test_ir.suite);
      ("cache", Test_cache.suite);
      ("machine", Test_machine.suite);
      ("asm", Test_asm.suite);
      ("link", Test_link.suite);
      ("kernel", Test_kernel.suite);
      ("syscall_errors", Test_syscall_errors.suite);
      ("server", Test_server.suite);
      ("system", Test_system.suite);
      ("engine", Test_engine.suite);
      ("snapshot", Test_snapshot.suite);
      ("front", Test_front.suite);
      ("passes", Test_passes.suite);
      ("codegen", Test_codegen.suite);
      ("toolchain", Test_toolchain.suite);
      ("analysis", Test_analysis.suite);
      ("prove", Test_prove.suite);
      ("hw", Test_hw.suite);
      ("security", Test_security.suite);
      ("workloads", Test_workloads.suite);
      ("experiments", Test_experiments.suite);
      ("fuzz", Test_fuzz.suite);
      ("obs", Test_obs.suite);
      ("chaos", Test_chaos.suite);
    ]
