(* Front-end tests: parse/sema error reporting, language semantics, and a
   differential property test — random expressions are compiled, run on
   the simulated machine, and checked against direct OCaml evaluation. *)

module Parser = Roload_front.Parser
module Lower = Roload_front.Lower
module Lexer = Roload_front.Lexer

let compile_run src =
  let exe = Core.Toolchain.compile_exe ~name:"t" src in
  Core.System.run ~variant:Core.System.Processor_kernel_modified exe

let expect_output src expected =
  let m = compile_run src in
  (match m.Core.System.status with
  | Roload_kernel.Process.Exited 0 -> ()
  | _ -> Alcotest.failf "did not exit cleanly: %s" (Core.System.status_string m));
  Alcotest.(check string) "output" expected m.Core.System.output

let expect_sema_error src fragment =
  match Core.Toolchain.compile_exe ~name:"t" src with
  | exception Core.Toolchain.Compile_error msg ->
    let contains hay needle =
      let n = String.length needle in
      let rec go i = i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) (Printf.sprintf "error mentions %S (got %S)" fragment msg)
      true (contains msg fragment)
  | _ -> Alcotest.failf "expected a compile error mentioning %S" fragment

(* ---------- error reporting ---------- *)

let test_unknown_identifier () =
  expect_sema_error "int main() { return nope; }" "unknown identifier nope"

let test_unknown_function () =
  expect_sema_error "int main() { return f(1); }" "unknown function f"

let test_arity_mismatch () =
  expect_sema_error "int f(int a, int b) { return a; } int main() { return f(1); }"
    "expects 2 arguments"

let test_break_outside_loop () =
  expect_sema_error "int main() { break; return 0; }" "break outside loop"

let test_unknown_type () =
  expect_sema_error "int main() { foo x; return 0; }" "expected"

let test_unknown_field () =
  expect_sema_error
    "struct p { int x; }; int main() { p *q = (p*)alloc(8); return q->y; }"
    "has no field y"

let test_unknown_method () =
  expect_sema_error
    "class C { virtual int m() { return 1; } }; int main() { C *c = new C; return c->nope(); }"
    "no method nope"

let test_parse_error_line () =
  match Core.Toolchain.compile_exe ~name:"t" "int main() {\n  return 1 +;\n}" with
  | exception Core.Toolchain.Compile_error msg ->
    Alcotest.(check bool) "mentions line 2" true
      (String.length msg > 0
      && (let contains needle hay =
            let n = String.length needle in
            let rec go i = i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1)) in
            go 0
          in
          contains "line 2" msg))
  | _ -> Alcotest.fail "expected parse error"

(* ---------- semantics ---------- *)

let test_short_circuit () =
  (* the right operand must not run when the left decides *)
  expect_output
    {|
int calls = 0;
int bump() { calls = calls + 1; return 1; }
int main() {
  int a = 0 && bump();
  int b = 1 || bump();
  print_int(calls); print_char(' ');
  print_int(a); print_char(' ');
  print_int(b); print_char('\n');
  int c = 1 && bump();
  print_int(calls); print_char('\n');
  return 0;
}
|}
    "0 0 1\n1\n"

let test_pointer_arithmetic_scaling () =
  expect_output
    {|
int arr[4] = { 10, 20, 30, 40 };
int main() {
  int *p = arr;
  int *q = p + 2;
  print_int(*q); print_char(' ');
  print_int(*(q - 1)); print_char(' ');
  char *c = (char*)arr;
  print_int(c[8]);   // low byte of arr[1] = 20
  print_char('\n');
  return 0;
}
|}
    "30 20 20\n"

let test_scoping_shadowing () =
  expect_output
    {|
int x = 5;
int main() {
  int x = 10;
  { int x = 20; print_int(x); print_char(' '); }
  print_int(x); print_char('\n');
  return 0;
}
|}
    "20 10\n"

let test_inherited_fields_and_override () =
  expect_output
    {|
class A {
  int base;
  virtual int get() { return base; }
  virtual int twice() { return get() * 2; }
};
class B : A {
  int extra;
  virtual int get() { return base + extra; }
};
int main() {
  B *b = new B;
  b->base = 3;
  b->extra = 4;
  A *a = (A*)b;
  print_int(a->get()); print_char(' ');
  print_int(a->twice()); print_char('\n');
  return 0;
}
|}
    "7 14\n"

let test_sizeof () =
  expect_output
    {|
struct pair { int a; int b; };
class C { int f; virtual int m() { return 0; } };
int main() {
  print_int(sizeof(int)); print_char(' ');
  print_int(sizeof(char)); print_char(' ');
  print_int(sizeof(int*)); print_char(' ');
  print_int(sizeof(pair)); print_char(' ');
  print_int(sizeof(C)); print_char('\n');
  return 0;
}
|}
    "8 1 8 16 16\n"

let test_char_semantics () =
  expect_output
    {|
int main() {
  char buf[4];
  buf[0] = 200;          // stored as a byte, loads sign-extended
  int v = buf[0];
  print_int(v); print_char('\n');
  return 0;
}
|}
    "-56\n"

let test_negative_modulo () =
  (* RISC-V rem truncates toward zero, like C *)
  expect_output
    {|
int main() {
  print_int(-7 % 3); print_char(' ');
  print_int(-7 / 3); print_char('\n');
  return 0;
}
|}
    "-1 -2\n"

let test_recursion_depth () =
  expect_output
    {|
int depth(int n) { if (n == 0) return 0; return 1 + depth(n - 1); }
int main() { print_int(depth(500)); print_char('\n'); return 0; }
|}
    "500\n"

let test_globals_init () =
  expect_output
    {|
int scalar = 7;
int table[5] = { 1, 2, 3 };
char *msg = "abc";
int main() {
  print_int(scalar + table[0] + table[2] + table[4]); print_char(' ');
  print_str(msg); print_char('\n');
  return 0;
}
|}
    "11 abc\n"

(* ---------- differential random-expression testing ---------- *)

type expr =
  | Const of int64
  | Var of int (* index into a fixed environment *)
  | Bin of string * expr * expr

let env = [| 3L; -17L; 1024L; 7L |]

let rec expr_to_mc = function
  | Const c -> Printf.sprintf "(%Ld)" c
  | Var i -> Printf.sprintf "v%d" i
  | Bin (op, a, b) -> Printf.sprintf "(%s %s %s)" (expr_to_mc a) op (expr_to_mc b)

let rec eval_expr = function
  | Const c -> c
  | Var i -> env.(i)
  | Bin (op, a, b) -> (
    let x = eval_expr a and y = eval_expr b in
    match op with
    | "+" -> Int64.add x y
    | "-" -> Int64.sub x y
    | "*" -> Int64.mul x y
    | "&" -> Int64.logand x y
    | "|" -> Int64.logor x y
    | "^" -> Int64.logxor x y
    | _ -> failwith "op")

let gen_expr =
  QCheck.Gen.(
    sized
    @@ fix (fun self n ->
           if n <= 0 then
             oneof
               [ map (fun v -> Const (Int64.of_int v)) (int_range (-1000) 1000);
                 map (fun i -> Var i) (int_bound 3) ]
           else
             map3
               (fun op a b -> Bin (op, a, b))
               (oneofl [ "+"; "-"; "*"; "&"; "|"; "^" ])
               (self (n / 2)) (self (n / 2))))

let prop_expression_differential =
  QCheck.Test.make ~count:25 ~name:"compiled expressions agree with OCaml evaluation"
    (QCheck.make ~print:expr_to_mc gen_expr)
    (fun e ->
      let expected = eval_expr e in
      let src =
        Printf.sprintf
          {|
int v0 = 3;
int v1 = -17;
int v2 = 1024;
int v3 = 7;
int main() {
  print_int(%s);
  print_char('\n');
  return 0;
}
|}
          (expr_to_mc e)
      in
      let m = compile_run src in
      m.Core.System.output = Printf.sprintf "%Ld\n" expected)

let suite =
  [
    Alcotest.test_case "unknown identifier" `Quick test_unknown_identifier;
    Alcotest.test_case "unknown function" `Quick test_unknown_function;
    Alcotest.test_case "arity mismatch" `Quick test_arity_mismatch;
    Alcotest.test_case "break outside loop" `Quick test_break_outside_loop;
    Alcotest.test_case "unknown type" `Quick test_unknown_type;
    Alcotest.test_case "unknown field" `Quick test_unknown_field;
    Alcotest.test_case "unknown method" `Quick test_unknown_method;
    Alcotest.test_case "parse error line" `Quick test_parse_error_line;
    Alcotest.test_case "short circuit" `Quick test_short_circuit;
    Alcotest.test_case "pointer arithmetic scaling" `Quick test_pointer_arithmetic_scaling;
    Alcotest.test_case "scoping and shadowing" `Quick test_scoping_shadowing;
    Alcotest.test_case "inheritance and override" `Quick test_inherited_fields_and_override;
    Alcotest.test_case "sizeof" `Quick test_sizeof;
    Alcotest.test_case "char semantics" `Quick test_char_semantics;
    Alcotest.test_case "negative division" `Quick test_negative_modulo;
    Alcotest.test_case "recursion depth" `Quick test_recursion_depth;
    Alcotest.test_case "global initializers" `Quick test_globals_init;
    Seeded.to_alcotest prop_expression_differential;
  ]
