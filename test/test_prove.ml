(* roload-prove tests: the whole-program abstract interpretation must
   reach a fixpoint with zero findings on every clean workload build,
   catch the planted interprocedural violations (with witness paths)
   that the per-function dataflow provably misses, and the proof-guided
   elision it licenses must be semantically invisible — identical
   output, byte-identical chaos detection coverage — while removing a
   large fraction of the dynamic ld.ro executions. *)

module Ir = Roload_ir.Ir
module Pass = Roload_passes.Pass
module Suite = Roload_workloads.Spec_suite
module Toolchain = Core.Toolchain
module System = Core.System
module Diagnostic = Roload_analysis.Diagnostic
module Prove = Roload_analysis.Prove
module Key_dataflow = Roload_analysis.Key_dataflow
module Campaign = Roload_inject.Campaign
module Gen = Roload_fuzz.Gen
module Diff = Roload_fuzz.Diff
module Prng = Roload_util.Prng

let compile ?(elide = false) ~scheme ~name src =
  let options = { Toolchain.default_options with Toolchain.scheme; elide } in
  Toolchain.compile ~options ~name src

let prove ~scheme ~name src = Toolchain.prove (compile ~scheme ~name src)

let has_code ~code diags = List.exists (fun d -> d.Diagnostic.code = code) diags

(* ---------- fixpoint, clean on every workload x scheme ---------- *)

let test_clean_workloads () =
  List.iter
    (fun scheme ->
      List.iter
        (fun (b : Suite.benchmark) ->
          let label =
            Printf.sprintf "%s/%s" (Pass.scheme_name scheme) b.Suite.name
          in
          let r = prove ~scheme ~name:b.Suite.name (b.Suite.source ~scale:1) in
          (match r.Prove.pr_diags with
          | [] -> ()
          | ds ->
            Alcotest.failf "%s: expected a clean prove, got:\n%s" label
              (Prove.report_to_string { r with Prove.pr_diags = ds }));
          if r.Prove.pr_rounds >= 50 then
            Alcotest.failf "%s: fixpoint took %d rounds" label r.Prove.pr_rounds;
          Alcotest.(check int) (label ^ ": exit code") 0 (Prove.exit_code r))
        Suite.all)
    Pass.all_schemes

(* ---------- the planted interprocedural violations ---------- *)

(* Same shape as examples/laundered.mc: a writable array's address is
   cast to a function pointer and laundered through a callee's return
   value.  Benign at runtime (pick = 0); invisible to the per-function
   dataflow (an opaque call return). *)
let laundered_src =
  {|
typedef int (*op_t)(int, int);
int add(int a, int b) { return a + b; }
int backdoor[2] = { 11, 13 };
op_t launder(int pick) {
  if (pick) { return (op_t)backdoor; }
  return add;
}
int main() {
  op_t f = launder(0);
  print_int(f(20, 22));
  return 0;
}
|}

(* Same shape as examples/outparam.mc: a callee stores a writable
   pointee into the caller's handler table through an out-pointer
   parameter.  Benign at runtime (danger = 0); the bad store happens in
   another function. *)
let outparam_src =
  {|
typedef int (*op_t)(int, int);
int add(int a, int b) { return a + b; }
int mul(int a, int b) { return a * b; }
int scratch[2] = { 7, 9 };
void pick_handler(op_t *slot, int danger) {
  slot[0] = add;
  slot[1] = mul;
  if (danger) { slot[1] = (op_t)scratch; }
}
int main() {
  op_t hs[2];
  pick_handler(hs, 0);
  print_int(hs[0](6, 7) + hs[1](2, 3));
  return 0;
}
|}

let check_planted ~label ~witness_frag src =
  let artifacts = compile ~scheme:Pass.Icall ~name:label src in
  (* invisible to roload-lint's three layers by construction *)
  (match Toolchain.lint artifacts with
  | [] -> ()
  | ds ->
    Alcotest.failf "%s: lint layers 1-3 should be clean, got:\n%s" label
      (Diagnostic.report_to_string ds));
  (* caught by roload-prove, with an interprocedural witness *)
  let r = Toolchain.prove artifacts in
  Alcotest.(check bool)
    (label ^ ": prove-writable-pointee reported")
    true
    (has_code ~code:"prove-writable-pointee" r.Prove.pr_diags);
  Alcotest.(check int) (label ^ ": exit 3") 3 (Prove.exit_code r);
  let report = Prove.report_to_string r in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool)
    (Printf.sprintf "%s: witness mentions %s" label witness_frag)
    true
    (contains report witness_frag);
  (* benign execution: the bad path is never taken *)
  let ms =
    System.run ~variant:System.Processor_kernel_modified artifacts.Toolchain.exe
  in
  Alcotest.(check bool) (label ^ ": runs clean") true (System.exited_cleanly ms)

let test_planted_laundered () =
  check_planted ~label:"laundered" ~witness_frag:"returned at launder" laundered_src

let test_planted_outparam () =
  check_planted ~label:"outparam" ~witness_frag:"stored at pick_handler" outparam_src

(* the per-function key dataflow reports the call-boundary escapes the
   prover then discharges — they are informational, not findings *)
let test_escapes_reported () =
  let artifacts = compile ~scheme:Pass.Icall ~name:"esc" laundered_src in
  let m = artifacts.Toolchain.ir_module in
  let escapes = Key_dataflow.escapes m in
  Alcotest.(check bool)
    "laundered: at least one keyed pointee crosses a call boundary" true
    (escapes <> []);
  (* and the dataflow layer itself stays clean (they are not findings) *)
  Alcotest.(check (list string)) "dataflow layer clean" []
    (List.filter_map
       (fun d ->
         if d.Diagnostic.layer = Diagnostic.Key_dataflow then Some d.Diagnostic.code
         else None)
       (Toolchain.lint artifacts))

(* ---------- proof-guided elision ---------- *)

let h264 =
  match Suite.find "h264ref" with
  | Some b -> b
  | None -> Alcotest.fail "h264ref missing from the suite"

let test_elide_h264 () =
  let src = h264.Suite.source ~scale:1 in
  let plain = compile ~scheme:Pass.Icall ~name:"h264ref" src in
  let elided = compile ~elide:true ~scheme:Pass.Icall ~name:"h264ref" src in
  (match elided.Toolchain.elide_stats with
  | Some s when s.Roload_passes.Roload_elide.el_icalls > 0 -> ()
  | Some _ -> Alcotest.fail "h264ref: no icall sites elided"
  | None -> Alcotest.fail "elide_stats missing under options.elide");
  let run exe = System.run ~variant:System.Processor_kernel_modified exe in
  let mp = run plain.Toolchain.exe and me = run elided.Toolchain.exe in
  Alcotest.(check bool) "plain clean" true (System.exited_cleanly mp);
  Alcotest.(check bool) "elided clean" true (System.exited_cleanly me);
  Alcotest.(check string) "identical output" mp.System.output me.System.output;
  let rb = mp.System.roloads_executed and ra = me.System.roloads_executed in
  if rb = 0 then Alcotest.fail "h264ref executed no ld.ro under icall";
  let reduction = 100.0 *. float_of_int (rb - ra) /. float_of_int rb in
  if reduction < 10.0 then
    Alcotest.failf "elision removed only %.1f%% of dynamic ld.ro (%d -> %d)"
      reduction rb ra;
  (* the removed executions are the per-type GFPT indirections
     (Machine.roload_key_counts keys 2..), surfaced as roload_typed *)
  Alcotest.(check bool) "typed ld.ro count dropped" true
    (me.System.metrics.Roload_obs.Metrics.roload_typed
    < mp.System.metrics.Roload_obs.Metrics.roload_typed);
  Alcotest.(check int) "no roload faults (plain)" 0
    (Roload_obs.Metrics.roload_faults mp.System.metrics);
  Alcotest.(check int) "no roload faults (elided)" 0
    (Roload_obs.Metrics.roload_faults me.System.metrics)

(* elision is licensed only by a clean prove run: a module with findings
   compiles under --elide with zero sites rewritten *)
let test_elide_disabled_on_findings () =
  let artifacts = compile ~elide:true ~scheme:Pass.Icall ~name:"laundered" laundered_src in
  match artifacts.Toolchain.elide_stats with
  | None -> Alcotest.fail "elide_stats missing under options.elide"
  | Some s ->
    Alcotest.(check int) "no icalls elided" 0 s.Roload_passes.Roload_elide.el_icalls;
    Alcotest.(check int) "no loads elided" 0 s.Roload_passes.Roload_elide.el_loads;
    Alcotest.(check int) "no checks inserted" 0 s.Roload_passes.Roload_elide.el_checks

(* ---------- elision is invisible to chaos detection coverage ---------- *)

let test_chaos_coverage_identical () =
  let cfg =
    { Campaign.default_config with Campaign.seed = 11L; count = 6; jobs = Some 2 }
  in
  let table r = Roload_util.Table.render (Campaign.coverage_table r) in
  let plain = table (Campaign.run cfg) in
  let elided = table (Campaign.run { cfg with Campaign.elide = true }) in
  Alcotest.(check string) "coverage table byte-identical" plain elided

(* ---------- elision is invisible to the differential matrix ---------- *)

let outcome_line = function
  | Diff.Agree bs ->
    "agree:"
    ^ String.concat ","
        (List.map
           (fun (s, (b : Roload_fuzz.Ir_eval.behavior)) ->
             Printf.sprintf "%s=%s/%s" (Pass.scheme_name s)
               (Roload_security.Trapclass.stop_name b.Roload_fuzz.Ir_eval.stop)
               (String.escaped b.Roload_fuzz.Ir_eval.output))
           bs)
  | Diff.Skipped r -> "skip:" ^ r
  | Diff.Divergent d ->
    Printf.sprintf "divergent:%s/%s" (Pass.scheme_name d.Diff.dv_scheme) d.Diff.dv_stage

let elide_equivalence =
  QCheck.Test.make ~name:"elided and unelided builds are outcome-identical"
    ~count:8
    QCheck.(map Int64.of_int small_int)
    (fun seed ->
      let prog = Gen.generate ~seed ~size:3 in
      let src = Gen.to_source prog in
      let plain = Diff.run_source ~name:"eq" src in
      let elided = Diff.run_source ~elide:true ~name:"eq" src in
      String.equal (outcome_line plain) (outcome_line elided))

let suite =
  [
    Alcotest.test_case "fixpoint clean on all workloads x schemes" `Slow
      test_clean_workloads;
    Alcotest.test_case "planted: fptr laundered through return" `Quick
      test_planted_laundered;
    Alcotest.test_case "planted: keyed table aliased via out-param" `Quick
      test_planted_outparam;
    Alcotest.test_case "call-boundary escapes reported, not findings" `Quick
      test_escapes_reported;
    Alcotest.test_case "h264ref: >=10% dynamic ld.ro elided, same output" `Slow
      test_elide_h264;
    Alcotest.test_case "findings disable elision" `Quick
      test_elide_disabled_on_findings;
    Alcotest.test_case "chaos coverage identical under elision" `Slow
      test_chaos_coverage_identical;
    QCheck_alcotest.to_alcotest elide_equivalence;
  ]
