(* End-to-end compiler tests: MiniC source → executable → run on the full
   ROLoad system, for every hardening scheme.  Hardened binaries must be
   observationally equivalent to unprotected ones on benign inputs. *)

module Pass = Roload_passes.Pass

let compile_and_run ?(scheme = Pass.Unprotected)
    ?(variant = Core.System.Processor_kernel_modified) ~name src =
  let options = { Core.Toolchain.default_options with scheme } in
  let exe = Core.Toolchain.compile_exe ~options ~name src in
  Core.System.run ~variant exe

let check_output ?scheme ~name ~expected src =
  let m = compile_and_run ?scheme ~name src in
  (match m.Core.System.status with
  | Roload_kernel.Process.Exited 0 -> ()
  | _ -> Alcotest.failf "%s: %s" name (Core.System.status_string m));
  Alcotest.(check string) name expected m.Core.System.output

let fib_src = {|
int fib(int n) {
  if (n < 2) return n;
  return fib(n - 1) + fib(n - 2);
}
int main() {
  print_int(fib(15));
  print_char('\n');
  return 0;
}
|}

let test_fib () = check_output ~name:"fib" ~expected:"610\n" fib_src

let loops_src = {|
int main() {
  int total = 0;
  int i;
  for (i = 0; i < 10; i = i + 1) {
    if (i % 2 == 0) { total = total + i * i; }
  }
  int arr[8];
  int j;
  for (j = 0; j < 8; j = j + 1) { arr[j] = j * 3; }
  while (j > 0) { j = j - 1; total = total + arr[j]; }
  print_int(total);
  print_char('\n');
  return 0;
}
|}

(* evens: 0+4+16+36+64 = 120; arr sum = 3*(0+..+7) = 84; total 204 *)
let test_loops () = check_output ~name:"loops" ~expected:"204\n" loops_src

let strings_src = {|
int main() {
  char buf[16];
  char *msg = "hello";
  int i = 0;
  while (msg[i]) { buf[i] = msg[i] - 32; i = i + 1; }
  buf[i] = 0;
  print_str(buf);
  print_char('\n');
  return 0;
}
|}

let test_strings () = check_output ~name:"strings" ~expected:"HELLO\n" strings_src

let fptr_src = {|
typedef int (*binop_t)(int, int);
int add(int a, int b) { return a + b; }
int mul(int a, int b) { return a * b; }
int apply(binop_t f, int a, int b) { return f(a, b); }
int main() {
  binop_t ops[2];
  ops[0] = add;
  ops[1] = mul;
  int i;
  int total = 0;
  for (i = 0; i < 2; i = i + 1) {
    total = total + apply(ops[i], 6, 7);
  }
  print_int(total);
  print_char('\n');
  return 0;
}
|}

let test_fptr () = check_output ~name:"fptr" ~expected:"55\n" fptr_src

let vcall_src = {|
class Shape {
  int tag;
  virtual int area() { return 0; }
  virtual int name() { return 63; }
};
class Square : Shape {
  int side;
  virtual int area() { return side * side; }
};
class Rect : Square {
  int h;
  virtual int area() { return side * h; }
  virtual int name() { return 82; }
};
int main() {
  Shape *shapes[3];
  Shape *s = new Shape;
  Square *q = new Square;
  q->side = 5;
  Rect *r = new Rect;
  r->side = 3;
  r->h = 4;
  shapes[0] = s;
  shapes[1] = (Shape*)q;
  shapes[2] = (Shape*)r;
  int total = 0;
  int i;
  for (i = 0; i < 3; i = i + 1) {
    total = total + shapes[i]->area();
  }
  print_int(total);
  print_char('\n');
  print_int(shapes[2]->name());
  print_char('\n');
  return 0;
}
|}

let test_vcall () = check_output ~name:"vcall" ~expected:"37\n82\n" vcall_src

let structs_src = {|
struct node {
  int value;
  node *next;
};
int main() {
  node *head = null;
  int i;
  for (i = 0; i < 5; i = i + 1) {
    node *n = (node*)alloc(sizeof(node));
    n->value = i * 10;
    n->next = head;
    head = n;
  }
  int total = 0;
  while (head != null) {
    total = total + head->value;
    head = head->next;
  }
  print_int(total);
  print_char('\n');
  return 0;
}
|}

let test_structs () = check_output ~name:"structs" ~expected:"100\n" structs_src

let methods_src = {|
class Counter {
  int count;
  int step;
  virtual void bump() { count = count + step; }
  int get() { return count; }
};
int main() {
  Counter *c = new Counter;
  c->step = 7;
  int i;
  for (i = 0; i < 6; i = i + 1) { c->bump(); }
  print_int(c->get());
  print_char('\n');
  return 0;
}
|}

let test_methods () = check_output ~name:"methods" ~expected:"42\n" methods_src

(* every scheme must preserve behaviour on benign runs *)
let test_schemes_equivalent () =
  List.iter
    (fun (name, src, expected) ->
      List.iter
        (fun scheme ->
          let m = compile_and_run ~scheme ~name src in
          (match m.Core.System.status with
          | Roload_kernel.Process.Exited 0 -> ()
          | _ ->
            Alcotest.failf "%s under %s: %s" name (Pass.scheme_name scheme)
              (Core.System.status_string m));
          Alcotest.(check string)
            (Printf.sprintf "%s under %s" name (Pass.scheme_name scheme))
            expected m.Core.System.output)
        Pass.all_schemes)
    [
      ("fib", fib_src, "610\n");
      ("fptr", fptr_src, "55\n");
      ("vcall", vcall_src, "37\n82\n");
      ("methods", methods_src, "42\n");
    ]

(* hardened schemes actually execute ld.ro instructions *)
let test_roload_executed () =
  let m = compile_and_run ~scheme:Pass.Vcall ~name:"vcall" vcall_src in
  Alcotest.(check bool) "vcall executes ld.ro" true (m.Core.System.roloads_executed > 0);
  let m2 = compile_and_run ~scheme:Pass.Icall ~name:"fptr" fptr_src in
  Alcotest.(check bool) "icall executes ld.ro" true (m2.Core.System.roloads_executed > 0);
  let m3 = compile_and_run ~scheme:Pass.Vtint_baseline ~name:"vcall" vcall_src in
  ignore m3

let test_no_roload_on_unprotected () =
  let m = compile_and_run ~scheme:Pass.Unprotected ~name:"vcall" vcall_src in
  Alcotest.(check int) "no ld.ro executed" 0 m.Core.System.roloads_executed

(* the §IV-C backward-edge extension preserves behaviour and actually
   guards returns with ld.ro *)
let test_retcall_scheme () =
  List.iter
    (fun (name, src, expected) ->
      let m = compile_and_run ~scheme:Pass.Retcall ~name src in
      (match m.Core.System.status with
      | Roload_kernel.Process.Exited 0 -> ()
      | _ ->
        Alcotest.failf "%s under Retcall: %s" name (Core.System.status_string m));
      Alcotest.(check string) (name ^ " under Retcall") expected m.Core.System.output;
      Alcotest.(check bool) (name ^ " executes protected returns") true
        (m.Core.System.roloads_executed > 0))
    [ ("fib", fib_src, "610\n"); ("vcall", vcall_src, "37\n82\n");
      ("fptr", fptr_src, "55\n") ]

(* unhardened binaries must run identically on all three systems *)
let test_systems_compatible () =
  let exe = Core.Toolchain.compile_exe ~name:"fib" fib_src in
  let outputs =
    List.map
      (fun v -> (Core.System.run ~variant:v exe).Core.System.output)
      Core.System.all_variants
  in
  match outputs with
  | [ a; b; c ] ->
    Alcotest.(check string) "baseline vs processor" a b;
    Alcotest.(check string) "processor vs kernel" b c
  | _ -> assert false

(* ---------- randomized scheme-equivalence ----------

   Generate a small random program exercising arithmetic, control flow,
   arrays, virtual dispatch and typed indirect calls; compile it under
   every scheme and require identical output.  This is the strongest
   end-to-end property in the suite: it exercises the whole stack
   (front end → passes → codegen → assembler → linker → kernel → MMU). *)

type rprog = { seed : int; loops : int; use_vcall : bool; use_icall : bool }

let render_rprog { seed; loops; use_vcall; use_icall } =
  Printf.sprintf
    {|
typedef int (*step_t)(int);
int step_a(int x) { return x * 3 + 1; }
int step_b(int x) { return x / 2 - 5; }
class Op {
  int bias;
  virtual int apply(int x) { return x + bias; }
};
class Neg : Op {
  virtual int apply(int x) { return bias - x; }
};
step_t steps[2] = { step_a, step_b };
int main() {
  int acc = %d;
  Op *ops[2];
  Op *o = new Op; o->bias = 3;
  Neg *n = new Neg; n->bias = 11;
  ops[0] = o;
  ops[1] = (Op*)n;
  int i;
  for (i = 0; i < %d; i = i + 1) {
    int sel = (acc ^ i) & 1;
    if (%d) { step_t f = steps[sel]; acc = acc + f(i); }
    if (%d) { acc = acc + ops[sel]->apply(acc & 255); }
    acc = (acc * 1103515245 + 12345) %% 100003;
    if (acc < 0) { acc = 0 - acc; }
  }
  print_int(acc);
  print_char('\n');
  return 0;
}
|}
    seed loops
    (if use_icall then 1 else 0)
    (if use_vcall then 1 else 0)

let gen_rprog =
  QCheck.Gen.(
    map
      (fun (seed, loops, v, ic) -> { seed; loops = 1 + loops; use_vcall = v; use_icall = ic })
      (quad (int_bound 100000) (int_bound 40) bool bool))

let prop_schemes_equivalent_random =
  QCheck.Test.make ~count:12 ~name:"random programs agree under every scheme"
    (QCheck.make ~print:render_rprog gen_rprog)
    (fun rp ->
      let src = render_rprog rp in
      let outputs =
        List.map
          (fun scheme ->
            let m = compile_and_run ~scheme ~name:"rand" src in
            (Core.System.exited_cleanly m, m.Core.System.output))
          Pass.all_schemes
      in
      match outputs with
      | (true, first) :: rest -> List.for_all (fun (ok, o) -> ok && o = first) rest
      | _ -> false)

(* print_int edge cases — in particular min_int, whose magnitude has no
   positive int64 counterpart, so the runtime's digit loop must iterate
   on the negative absolute value (regression: the runtime and the IR
   oracle both once negated the value and printed garbage; see
   DESIGN.md §9) *)
let min_int_src =
  {|
int main() {
  int m = (0 - 9223372036854775807) - 1;
  print_int(m);
  print_char('\n');
  print_int(m + 1);
  print_char('\n');
  print_int(0 - 1);
  print_char('\n');
  print_int(0);
  print_char('\n');
  return 0;
}
|}

let test_print_int_min_int () =
  let expected = "-9223372036854775808\n-9223372036854775807\n-1\n0\n" in
  List.iter
    (fun scheme ->
      check_output ~scheme
        ~name:("print_int(min_int) under " ^ Pass.scheme_name scheme)
        ~expected min_int_src)
    Pass.all_schemes

let suite =
  [
    Alcotest.test_case "fib" `Quick test_fib;
    Alcotest.test_case "print_int min_int" `Quick test_print_int_min_int;
    Alcotest.test_case "loops and arrays" `Quick test_loops;
    Alcotest.test_case "strings" `Quick test_strings;
    Alcotest.test_case "function pointers" `Quick test_fptr;
    Alcotest.test_case "virtual calls" `Quick test_vcall;
    Alcotest.test_case "structs and heap" `Quick test_structs;
    Alcotest.test_case "methods" `Quick test_methods;
    Alcotest.test_case "all schemes equivalent" `Slow test_schemes_equivalent;
    Alcotest.test_case "roload executed when hardened" `Quick test_roload_executed;
    Alcotest.test_case "no roload when unprotected" `Quick test_no_roload_on_unprotected;
    Alcotest.test_case "retcall scheme (§IV-C)" `Quick test_retcall_scheme;
    Alcotest.test_case "three systems compatible" `Quick test_systems_compatible;
    Seeded.to_alcotest prop_schemes_equivalent_random;
  ]
