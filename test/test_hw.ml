(* Hardware-model tests: netlist simulation, the TLB datapath verified
   against a behavioural reference (the central RTL property), LUT
   mapping sanity, timing, and the Table III deltas. *)

module N = Roload_hw.Netlist
module Sim = Roload_hw.Netlist_sim
module Tlb_rtl = Roload_hw.Tlb_rtl
module Map_lut = Roload_hw.Map_lut
module Timing = Roload_hw.Timing_sta
module Synth = Roload_hw.Synth
module Area = Roload_hw.Area

let test_netlist_gates () =
  let n = N.create () in
  let a = N.input n "a" and b = N.input n "b" in
  let x = N.xor2 n a b in
  let m = N.mux n ~sel:a ~a:b ~b:(N.const_ n false) in
  let asn = Sim.create_assignment () in
  Sim.set asn a true;
  Sim.set asn b false;
  let eval = Sim.evaluate n asn in
  Alcotest.(check bool) "xor" true (eval x);
  Alcotest.(check bool) "mux sel=1 picks a" false (eval m)

let test_equal_bus () =
  let n = N.create () in
  let a = N.inputs n "a" 8 and b = N.inputs n "b" 8 in
  let eq = N.equal_bus n a b in
  let check x y expected =
    let asn = Sim.create_assignment () in
    Sim.set_bus asn a (Int64.of_int x);
    Sim.set_bus asn b (Int64.of_int y);
    Alcotest.(check bool) (Printf.sprintf "%d=%d" x y) expected (Sim.evaluate n asn eq)
  in
  check 0 0 true;
  check 255 255 true;
  check 170 85 false;
  check 1 0 false

(* behavioural reference for the TLB datapath *)
type entry = { valid : bool; tag : int; r : bool; w : bool; x : bool; u : bool; key : int }

let behavioural ~entries ~vpn ~(kind : [ `Fetch | `Load | `Store ]) ~is_roload ~req_key =
  let hit_entry = List.find_opt (fun e -> e.valid && e.tag = vpn) entries in
  match hit_entry with
  | None -> (false, false)
  | Some e ->
    let conv =
      (match kind with `Fetch -> e.x | `Load -> e.r | `Store -> e.w) && e.u
    in
    let roload_ok =
      (not is_roload) || (e.r && (not e.w) && (not e.x) && e.key = req_key)
    in
    (true, conv && roload_ok)

let drive (elab : Tlb_rtl.elaborated) ~entries ~vpn ~kind ~is_roload ~req_key =
  let asn = Sim.create_assignment () in
  Sim.set_bus asn elab.Tlb_rtl.in_vpn (Int64.of_int vpn);
  Sim.set asn elab.Tlb_rtl.in_fetch (kind = `Fetch);
  Sim.set asn elab.Tlb_rtl.in_load (kind = `Load);
  Sim.set asn elab.Tlb_rtl.in_store (kind = `Store);
  (match elab.Tlb_rtl.in_is_roload with Some id -> Sim.set asn id is_roload | None -> ());
  (match elab.Tlb_rtl.in_key with
  | Some bus -> Sim.set_bus asn bus (Int64.of_int req_key)
  | None -> ());
  List.iteri
    (fun i e ->
      Sim.set_bus asn elab.Tlb_rtl.st_valids.(i) (if e.valid then 1L else 0L);
      Sim.set_bus asn elab.Tlb_rtl.st_tags.(i) (Int64.of_int e.tag);
      let perm_word =
        (if e.r then 1 else 0) lor (if e.w then 2 else 0) lor (if e.x then 4 else 0)
        lor if e.u then 8 else 0
      in
      Sim.set_bus asn elab.Tlb_rtl.st_perms.(i) (Int64.of_int perm_word);
      match elab.Tlb_rtl.st_keys with
      | Some keys -> Sim.set_bus asn keys.(i) (Int64.of_int e.key)
      | None -> ())
    entries;
  let eval = Sim.evaluate elab.Tlb_rtl.netlist asn in
  (eval elab.Tlb_rtl.hit, eval elab.Tlb_rtl.allow)

let gen_entry =
  QCheck.Gen.(
    map
      (fun (valid, tag, perms, key) ->
        { valid; tag; r = perms land 1 <> 0; w = perms land 2 <> 0;
          x = perms land 4 <> 0; u = perms land 8 <> 0; key })
      (quad bool (int_bound 15) (int_bound 15) (int_bound 7)))

let gen_case =
  QCheck.Gen.(
    let* entries = list_repeat 4 gen_entry in
    let* vpn = int_bound 15 in
    let* kind = oneofl [ `Fetch; `Load; `Store ] in
    let* is_roload = bool in
    let* req_key = int_bound 7 in
    (* roload only qualifies loads *)
    let is_roload = is_roload && kind = `Load in
    return (entries, vpn, kind, is_roload, req_key))

(* THE property: the elaborated ROLoad TLB datapath implements exactly the
   behavioural check of paper §II-E1 *)
let prop_rtl_matches_behavioural =
  let elab =
    Tlb_rtl.elaborate
      { (Tlb_rtl.default_config ~with_roload:true) with entries = 4; vpn_bits = 4;
        key_bits = 3; ppn_bits = 4 }
  in
  QCheck.Test.make ~count:500 ~name:"TLB RTL = behavioural reference (with roload)"
    (QCheck.make gen_case)
    (fun (entries, vpn, kind, is_roload, req_key) ->
      (* the one-hot mux needs at most one match: dedupe tags *)
      let seen = Hashtbl.create 8 in
      let entries =
        List.map
          (fun e ->
            if e.valid && Hashtbl.mem seen e.tag then { e with valid = false }
            else begin
              if e.valid then Hashtbl.add seen e.tag ();
              e
            end)
          entries
      in
      let expected = behavioural ~entries ~vpn ~kind ~is_roload ~req_key in
      drive elab ~entries ~vpn ~kind ~is_roload ~req_key = expected)

let prop_rtl_baseline_matches =
  let elab =
    Tlb_rtl.elaborate
      { (Tlb_rtl.default_config ~with_roload:false) with entries = 4; vpn_bits = 4;
        key_bits = 3; ppn_bits = 4 }
  in
  QCheck.Test.make ~count:300 ~name:"TLB RTL = behavioural reference (baseline)"
    (QCheck.make gen_case)
    (fun (entries, vpn, kind, _is_roload, req_key) ->
      let seen = Hashtbl.create 8 in
      let entries =
        List.map
          (fun e ->
            if e.valid && Hashtbl.mem seen e.tag then { e with valid = false }
            else begin
              if e.valid then Hashtbl.add seen e.tag ();
              e
            end)
          entries
      in
      let expected = behavioural ~entries ~vpn ~kind ~is_roload:false ~req_key in
      drive elab ~entries ~vpn ~kind ~is_roload:false ~req_key = expected)

let test_mapping_sane () =
  let elab = Tlb_rtl.elaborate (Tlb_rtl.default_config ~with_roload:true) in
  let m = Map_lut.map elab.Tlb_rtl.netlist in
  Alcotest.(check bool) "luts positive" true (m.Map_lut.luts > 0);
  Alcotest.(check bool) "luts below gate count" true
    (m.Map_lut.luts <= N.count_combinational elab.Tlb_rtl.netlist);
  Alcotest.(check int) "ffs counted" (N.count_ffs elab.Tlb_rtl.netlist) m.Map_lut.ffs;
  Alcotest.(check bool) "depth positive" true (m.Map_lut.depth > 0)

(* Table III shape: small positive LUT/FF increases, slack shrinks but
   stays positive, Fmax barely moves *)
let test_table3_shape () =
  let r = Synth.run () in
  let c = r.Synth.comparison in
  Alcotest.(check bool) "lut delta positive" true
    (c.Area.roload_tlb.Area.luts > c.Area.baseline_tlb.Area.luts);
  Alcotest.(check bool) "ff delta positive" true
    (c.Area.roload_tlb.Area.ffs > c.Area.baseline_tlb.Area.ffs);
  Alcotest.(check bool) "core lut increase < 3.32%" true (c.Area.lut_increase_core_pct < 3.32);
  Alcotest.(check bool) "core ff increase < 3.32%" true (c.Area.ff_increase_core_pct < 3.32);
  Alcotest.(check bool) "system increases below core" true
    (c.Area.lut_increase_system_pct < c.Area.lut_increase_core_pct);
  let t0 = r.Synth.timing_without and t1 = r.Synth.timing_with in
  Alcotest.(check bool) "baseline meets timing" true (t0.Timing.worst_slack_ns > 0.0);
  Alcotest.(check bool) "roload meets timing" true (t1.Timing.worst_slack_ns > 0.0);
  Alcotest.(check bool) "slack shrinks" true
    (t1.Timing.worst_slack_ns <= t0.Timing.worst_slack_ns);
  Alcotest.(check bool) "fmax above target" true (t1.Timing.fmax_mhz > 125.0)

(* the extra key FFs are exactly entries * key_bits (D-TLB only design) *)
let test_ff_delta_is_key_storage () =
  let base = Tlb_rtl.elaborate (Tlb_rtl.default_config ~with_roload:false) in
  let ro = Tlb_rtl.elaborate (Tlb_rtl.default_config ~with_roload:true) in
  let d = N.count_ffs ro.Tlb_rtl.netlist - N.count_ffs base.Tlb_rtl.netlist in
  Alcotest.(check int) "delta = 32 entries x 10 bits" 320 d

let suite =
  [
    Alcotest.test_case "netlist gates" `Quick test_netlist_gates;
    Alcotest.test_case "equal_bus" `Quick test_equal_bus;
    Alcotest.test_case "lut mapping sanity" `Quick test_mapping_sane;
    Alcotest.test_case "table3 shape" `Quick test_table3_shape;
    Alcotest.test_case "ff delta = key storage" `Quick test_ff_delta_is_key_storage;
    Seeded.to_alcotest prop_rtl_matches_behavioural;
    Seeded.to_alcotest prop_rtl_baseline_matches;
  ]
