(* Execution-engine equivalence tests: the block-cached and
   trace-compiled engines must be observably indistinguishable —
   architectural state, traps, output, and every cycle/cache/TLB
   counter — from the retained single-step reference interpreter, on
   random programs, on every hardening scheme, and across
   self-modifying code.  The traced runs force the hotness threshold to
   1 so even short test programs actually compile traces. *)

module Machine = Roload_machine.Machine
module Config = Roload_machine.Config
module Kernel = Roload_kernel.Kernel
module Process = Roload_kernel.Process
module Inst = Roload_isa.Inst
module Reg = Roload_isa.Reg
module Encode = Roload_isa.Encode
module Pass = Roload_passes.Pass
module Suite = Roload_workloads.Spec_suite
module System = Core.System
module Exp = Core.Experiments

(* ---------- measurement comparison ---------- *)

let stats_pair (s : System.cache_stats) = (s.System.accesses, s.System.misses)

let check_same_measurement ctx (a : System.measurement) (b : System.measurement) =
  let chk : 'a. string -> 'a Alcotest.testable -> 'a -> 'a -> unit =
   fun name ty x y -> Alcotest.check ty (ctx ^ ": " ^ name) x y
  in
  chk "status" Alcotest.string (System.status_string a) (System.status_string b);
  chk "cycles" Alcotest.int64 a.System.cycles b.System.cycles;
  chk "instructions" Alcotest.int64 a.System.instructions b.System.instructions;
  chk "output" Alcotest.string a.System.output b.System.output;
  chk "peak_kib" Alcotest.int a.System.peak_kib b.System.peak_kib;
  chk "footprint" Alcotest.int a.System.footprint_bytes b.System.footprint_bytes;
  chk "roloads" Alcotest.int a.System.roloads_executed b.System.roloads_executed;
  let pair = Alcotest.(pair int int) in
  chk "icache" pair (stats_pair a.System.icache) (stats_pair b.System.icache);
  chk "dcache" pair (stats_pair a.System.dcache) (stats_pair b.System.dcache);
  chk "itlb" pair (stats_pair a.System.itlb) (stats_pair b.System.itlb);
  chk "dtlb" pair (stats_pair a.System.dtlb) (stats_pair b.System.dtlb)

(* force immediate trace compilation inside [f], restoring afterwards *)
let with_hot_threshold n f =
  let prev = Machine.default_hot_threshold () in
  Machine.set_default_hot_threshold n;
  Fun.protect ~finally:(fun () -> Machine.set_default_hot_threshold prev) f

let run_both_engines ?(variant = System.Processor_kernel_modified) ~ctx exe =
  let blocked = System.run ~engine:Machine.Block_cached ~variant exe in
  let stepped = System.run ~engine:Machine.Single_step ~variant exe in
  let traced =
    with_hot_threshold 1 (fun () -> System.run ~engine:Machine.Traced ~variant exe)
  in
  check_same_measurement (ctx ^ "/block-vs-single") blocked stepped;
  check_same_measurement (ctx ^ "/traced-vs-single") traced stepped;
  blocked

(* ---------- random MiniC programs (straight-line + branchy) ---------- *)

(* A generator over a small MiniC fragment: assignments of random
   arithmetic over four variables, nested if/else, and bounded while
   loops (each loop gets a fresh counter, so every program terminates).
   Division and remainder are included — RISC-V defines x/0 without
   trapping, and both engines must agree on that too. *)
let gen_source rs =
  let open QCheck.Gen in
  let vars = [| "a"; "b"; "c"; "d" |] in
  let var () = vars.(int_bound 3 rs) in
  let rec expr depth =
    if depth <= 0 || bool rs then
      if bool rs then string_of_int (int_bound 40 rs) else var ()
    else
      let op = [| "+"; "-"; "*"; "/"; "%" |].(int_bound 4 rs) in
      Printf.sprintf "(%s %s %s)" (expr (depth - 1)) op (expr (depth - 1))
  in
  let loop_id = ref 0 in
  let buf = Buffer.create 256 in
  let rec stmts depth n indent =
    for _ = 1 to n do
      match if depth <= 0 then 0 else int_bound 3 rs with
      | 0 | 1 ->
        Buffer.add_string buf (Printf.sprintf "%s%s = %s;\n" indent (var ()) (expr 2))
      | 2 ->
        Buffer.add_string buf
          (Printf.sprintf "%sif (%s < %s) {\n" indent (expr 1) (expr 1));
        stmts (depth - 1) (1 + int_bound 1 rs) (indent ^ "  ");
        Buffer.add_string buf (indent ^ "} else {\n");
        stmts (depth - 1) (1 + int_bound 1 rs) (indent ^ "  ");
        Buffer.add_string buf (indent ^ "}\n")
      | _ ->
        incr loop_id;
        let i = Printf.sprintf "t%d" !loop_id in
        let bound = 1 + int_bound 5 rs in
        Buffer.add_string buf
          (Printf.sprintf "%sint %s;\n%s%s = 0;\n%swhile (%s < %d) {\n" indent i indent
             i indent i bound);
        stmts (depth - 1) (1 + int_bound 1 rs) (indent ^ "  ");
        Buffer.add_string buf (Printf.sprintf "%s  %s = %s + 1;\n%s}\n" indent i i indent)
    done
  in
  stmts 2 (3 + int_bound 4 rs) "  ";
  Printf.sprintf
    "int main() {\n\
    \  int a; int b; int c; int d;\n\
    \  a = %d; b = %d; c = %d; d = %d;\n\
     %s\
    \  print_int(a + b + c + d);\n\
    \  return 0;\n\
     }\n"
    (int_bound 9 rs) (int_bound 9 rs) (int_bound 9 rs) (int_bound 9 rs)
    (Buffer.contents buf)

let gen_case rs =
  let open QCheck.Gen in
  let scheme = oneofl Pass.all_schemes rs in
  (gen_source rs, scheme)

let arb_case =
  QCheck.make gen_case ~print:(fun (src, scheme) ->
      Printf.sprintf "// scheme %s\n%s" (Pass.scheme_name scheme) src)

let prop_engines_agree =
  QCheck.Test.make ~count:25 ~name:"block & traced engines == single-step reference"
    arb_case
    (fun (src, scheme) ->
      let exe =
        Core.Toolchain.compile_exe
          ~options:{ Core.Toolchain.default_options with scheme }
          ~name:"rand" src
      in
      let ctx = Pass.scheme_name scheme in
      ignore (run_both_engines ~ctx exe);
      ignore (run_both_engines ~variant:System.Baseline ~ctx:(ctx ^ "/baseline") exe);
      true)

(* ---------- all schemes on scheme-rich code ---------- *)

(* The random programs above have no indirect calls, so the hardening
   schemes barely fire on them.  The security victim exercises vcalls,
   icalls and returns; every scheme must behave identically on both
   engines, ld.ro accounting included. *)
let test_all_schemes_victim () =
  List.iter
    (fun scheme ->
      let exe =
        Core.Toolchain.compile_exe
          ~options:{ Core.Toolchain.default_options with scheme }
          ~name:"victim" Roload_security.Victim.source
      in
      let m = run_both_engines ~ctx:(Pass.scheme_name scheme) exe in
      Alcotest.(check bool)
        (Pass.scheme_name scheme ^ ": victim runs")
        true (System.exited_cleanly m))
    Pass.all_schemes

(* ---------- self-modifying code (satellite bugfix regression) ---------- *)

let enc inst = Int64.of_int (Encode.encode inst)

(* mmap an RWX page, write [addi a0, x0, 7; ret] into it, call it, then
   overwrite the first word with [addi a0, x0, 35] and call again.  A
   stale decode/block cache replays the old body and exits 14; the
   store-invalidation fix makes both calls see fresh code and exits 42. *)
let self_modifying_src =
  Printf.sprintf
    {|
.section .text
_start:
    li a0, 0
    li a1, 4096
    li a2, 7
    li a3, 0
    li a4, 0
    li a7, 222
    ecall
    mv s0, a0
    li t0, %Ld
    sw t0, 0(s0)
    li t1, %Ld
    sw t1, 4(s0)
    jalr s0
    mv s1, a0
    li t2, %Ld
    sw t2, 0(s0)
    jalr s0
    add a0, a0, s1
    li a7, 93
    ecall
|}
    (enc (Inst.Op_imm (Inst.Add, Reg.a0, Reg.zero, 7L)))
    (enc (Inst.Jalr (Reg.zero, Reg.ra, 0L)))
    (enc (Inst.Op_imm (Inst.Add, Reg.a0, Reg.zero, 35L)))

let build_exe src =
  let items = Roload_asm.Asm_parser.parse src in
  let obj = Roload_asm.Assemble.assemble items in
  Roload_link.Linker.link [ obj ]

let exec_on ~engine exe =
  let machine = Machine.create ~engine Config.default in
  let kernel = Kernel.create ~machine ~config:Kernel.default_config in
  let _process, outcome = Kernel.exec kernel exe in
  (machine, outcome)

let check_exit ctx expected (outcome : Kernel.run_outcome) =
  match outcome.Kernel.status with
  | Process.Exited n when n = expected -> ()
  | s ->
    Alcotest.failf "%s: expected Exited %d, got %s" ctx expected
      (match s with
      | Process.Exited n -> Printf.sprintf "Exited %d" n
      | Process.Killed sg -> Roload_kernel.Signal.to_string sg
      | Process.Running -> "Running")

let test_self_modifying () =
  let exe = build_exe self_modifying_src in
  let _, blocked = exec_on ~engine:Machine.Block_cached exe in
  check_exit "block engine" 42 blocked;
  let _, stepped = exec_on ~engine:Machine.Single_step exe in
  check_exit "single-step engine" 42 stepped;
  let _, traced =
    with_hot_threshold 1 (fun () -> exec_on ~engine:Machine.Traced exe)
  in
  check_exit "traced engine" 42 traced;
  Alcotest.(check int64) "cycles agree" blocked.Kernel.cycles stepped.Kernel.cycles;
  Alcotest.(check int64) "instructions agree" blocked.Kernel.instructions
    stepped.Kernel.instructions;
  Alcotest.(check int64) "traced cycles agree" traced.Kernel.cycles
    stepped.Kernel.cycles;
  Alcotest.(check int64) "traced instructions agree" traced.Kernel.instructions
    stepped.Kernel.instructions

(* Stores to non-code pages must NOT flush the decode/block caches: run
   a program that stores into its writable data page (which, under the
   default layout, sits adjacent to the executable segment) and check
   the caches built while executing it survived to the end. *)
let adjacent_store_src = {|
.section .text
_start:
    la a1, buf
    li t0, 1234
    sd t0, 0(a1)
    ld a0, 0(a1)
    sb t0, 8(a1)
    li a0, 0
    li a7, 93
    ecall
.section .data
buf:
    .quad 0
    .quad 0
|}

let test_adjacent_page_store_keeps_caches () =
  let exe = build_exe adjacent_store_src in
  let machine, outcome = exec_on ~engine:Machine.Block_cached exe in
  check_exit "adjacent store" 0 outcome;
  Alcotest.(check bool) "blocks survive data-page stores" true
    (Machine.cached_blocks machine > 0);
  Alcotest.(check bool) "decodes survive data-page stores" true
    (Machine.cached_decodes machine > 0)

let test_code_page_store_flushes () =
  let exe = build_exe self_modifying_src in
  let machine, outcome = exec_on ~engine:Machine.Block_cached exe in
  check_exit "self-modifying" 42 outcome;
  (* the final block (the rewritten mmap page code ran last, then the
     exit sequence re-decoded) is small: the flush really dropped the
     pre-store decodes *)
  Alcotest.(check bool) "flush dropped stale decodes" true
    (Machine.cached_decodes machine < 10)

(* The traced-engine variant of the regression above: call the mmap'd
   code in a loop until it is trace-compiled (hot threshold 1), then
   overwrite it — the store must flush the *compiled trace*, not just
   the decoded block.  8 calls returning 7, then one returning 35 after
   the rewrite: exit 91.  A stale trace replays 7 and exits 63. *)
let trace_smc_src =
  Printf.sprintf
    {|
.section .text
_start:
    li a0, 0
    li a1, 4096
    li a2, 7
    li a3, 0
    li a4, 0
    li a7, 222
    ecall
    mv s0, a0
    li t0, %Ld
    sw t0, 0(s0)
    li t1, %Ld
    sw t1, 4(s0)
    li s1, 0
    li t3, 0
    li t4, 8
loop:
    jalr s0
    add s1, s1, a0
    addi t3, t3, 1
    blt t3, t4, loop
    li t2, %Ld
    sw t2, 0(s0)
    jalr s0
    add a0, a0, s1
    li a7, 93
    ecall
|}
    (enc (Inst.Op_imm (Inst.Add, Reg.a0, Reg.zero, 7L)))
    (enc (Inst.Jalr (Reg.zero, Reg.ra, 0L)))
    (enc (Inst.Op_imm (Inst.Add, Reg.a0, Reg.zero, 35L)))

let test_trace_invalidation () =
  let exe = build_exe trace_smc_src in
  let engines =
    [ (Machine.Single_step, "single"); (Machine.Block_cached, "block");
      (Machine.Traced, "traced") ]
  in
  let outcomes =
    List.map
      (fun (engine, name) ->
        let machine, outcome =
          with_hot_threshold 1 (fun () -> exec_on ~engine exe)
        in
        check_exit (name ^ " engine") 91 outcome;
        (name, machine, outcome))
      engines
  in
  (* the traced run really compiled a trace over the rewritten page —
     otherwise this test degenerates into the block-cache regression *)
  let _, traced_machine, traced_outcome =
    List.find (fun (n, _, _) -> n = "traced") outcomes
  in
  Alcotest.(check bool) "a trace was compiled" true
    (Machine.traces_compiled traced_machine >= 1);
  List.iter
    (fun (name, _, (o : Kernel.run_outcome)) ->
      Alcotest.(check int64) (name ^ " cycles agree") traced_outcome.Kernel.cycles
        o.Kernel.cycles;
      Alcotest.(check int64)
        (name ^ " instructions agree")
        traced_outcome.Kernel.instructions o.Kernel.instructions)
    outcomes

(* The chain-exit translation memo (lower.ml) must be invalidated when a
   store rewrites a page that chained hops land on.  Run a hot loop that
   chains through an mmap'd function on every iteration — so the
   per-site memo is warm by the time the rewrite happens — then rewrite
   the function *mid-loop* and keep looping through the same chain
   site.  8 calls returning 3 then 8 returning 5: exit 64.  A stale
   memo or trace replays 3 and exits 48; a memo that skipped or
   double-charged the TLB scan diverges from the single-step oracle's
   cycle count. *)
let chain_memo_smc_src =
  Printf.sprintf
    {|
.section .text
_start:
    li a0, 0
    li a1, 4096
    li a2, 7
    li a3, 0
    li a4, 0
    li a7, 222
    ecall
    mv s0, a0
    li t0, %Ld
    sw t0, 0(s0)
    li t1, %Ld
    sw t1, 4(s0)
    li s1, 0
    li t3, 0
    li t4, 16
    li t5, 8
loop:
    jalr s0
    add s1, s1, a0
    addi t3, t3, 1
    bne t3, t5, skip
    li t2, %Ld
    sw t2, 0(s0)
skip:
    blt t3, t4, loop
    mv a0, s1
    li a7, 93
    ecall
|}
    (enc (Inst.Op_imm (Inst.Add, Reg.a0, Reg.zero, 3L)))
    (enc (Inst.Jalr (Reg.zero, Reg.ra, 0L)))
    (enc (Inst.Op_imm (Inst.Add, Reg.a0, Reg.zero, 5L)))

let test_chain_memo_smc () =
  let exe = build_exe chain_memo_smc_src in
  let _, stepped = exec_on ~engine:Machine.Single_step exe in
  check_exit "single-step" 64 stepped;
  let _, blocked = exec_on ~engine:Machine.Block_cached exe in
  check_exit "block" 64 blocked;
  let machine, traced =
    with_hot_threshold 1 (fun () -> exec_on ~engine:Machine.Traced exe)
  in
  check_exit "traced" 64 traced;
  Alcotest.(check bool) "traces were compiled" true
    (Machine.traces_compiled machine >= 1);
  Alcotest.(check int64) "traced cycles agree with the oracle" stepped.Kernel.cycles
    traced.Kernel.cycles;
  Alcotest.(check int64) "traced instructions agree with the oracle"
    stepped.Kernel.instructions traced.Kernel.instructions;
  Alcotest.(check int64) "block cycles agree with the oracle" stepped.Kernel.cycles
    blocked.Kernel.cycles

(* ---------- parallel fan-out determinism (ROLOAD_JOBS) ---------- *)

let small () = [ Option.get (Suite.find "xalancbmk"); Option.get (Suite.find "gobmk") ]

let test_jobs_determinism () =
  let render () =
    Roload_util.Table.render (Exp.section5b ~scale:1 ~benchmarks:(small ()) ()).Exp.table
  in
  Core.Parallel.set_jobs 1;
  let serial = render () in
  Core.Parallel.set_jobs 4;
  let parallel = render () in
  Core.Parallel.set_jobs 0;
  Alcotest.(check string) "section5b byte-identical at -j1 and -j4" serial parallel

let suite =
  [
    Seeded.to_alcotest prop_engines_agree;
    Alcotest.test_case "all schemes: victim equivalence" `Quick test_all_schemes_victim;
    Alcotest.test_case "self-modifying code re-decodes" `Quick test_self_modifying;
    Alcotest.test_case "data-page stores keep caches" `Quick
      test_adjacent_page_store_keeps_caches;
    Alcotest.test_case "code-page stores flush caches" `Quick test_code_page_store_flushes;
    Alcotest.test_case "store into traced page flushes the trace" `Quick
      test_trace_invalidation;
    Alcotest.test_case "mid-loop rewrite invalidates chain-exit memos" `Quick
      test_chain_memo_smc;
    Alcotest.test_case "jobs determinism (-j1 == -j4)" `Slow test_jobs_determinism;
  ]
