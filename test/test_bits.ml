(* Unit and property tests for Roload_util.Bits and friends. *)

module Bits = Roload_util.Bits
module Prng = Roload_util.Prng
module Stats = Roload_util.Stats

let check_i64 = Alcotest.(check int64)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_masks () =
  check_i64 "mask 0" 0L (Bits.mask_bits 0);
  check_i64 "mask 1" 1L (Bits.mask_bits 1);
  check_i64 "mask 12" 0xFFFL (Bits.mask_bits 12);
  check_i64 "mask 64" (-1L) (Bits.mask_bits 64)

let test_extract_insert () =
  let v = 0xDEADBEEF12345678L in
  check_i64 "extract low nibble" 0x8L (Bits.extract v ~lo:0 ~width:4);
  check_i64 "extract middle" 0xBEEFL (Bits.extract v ~lo:32 ~width:16);
  let v2 = Bits.insert v ~lo:32 ~width:16 ~field:0xCAFEL in
  check_i64 "insert" 0xCAFEL (Bits.extract v2 ~lo:32 ~width:16);
  check_i64 "insert preserves low" (Bits.extract v ~lo:0 ~width:32)
    (Bits.extract v2 ~lo:0 ~width:32)

let test_sign_extend () =
  check_i64 "sext 0xFFF/12" (-1L) (Bits.sign_extend 0xFFFL ~width:12);
  check_i64 "sext 0x7FF/12" 0x7FFL (Bits.sign_extend 0x7FFL ~width:12);
  check_i64 "sext full width" 5L (Bits.sign_extend 5L ~width:64)

let test_fits () =
  check_bool "2047 fits s12" true (Bits.fits_signed 2047L ~width:12);
  check_bool "2048 not s12" false (Bits.fits_signed 2048L ~width:12);
  check_bool "-2048 fits s12" true (Bits.fits_signed (-2048L) ~width:12);
  check_bool "-2049 not s12" false (Bits.fits_signed (-2049L) ~width:12)

let test_unsigned_compare () =
  check_bool "ult simple" true (Bits.ult 1L 2L);
  check_bool "ult negative is big" false (Bits.ult (-1L) 2L);
  check_bool "uge negative" true (Bits.uge (-1L) 2L)

let test_align () =
  check_int "align up" 4096 (Bits.align_up 1 4096);
  check_int "align up already" 4096 (Bits.align_up 4096 4096);
  check_int "align down" 0 (Bits.align_down 4095 4096);
  check_bool "is_aligned" true (Bits.is_aligned 8192 4096)

let test_popcount () =
  check_int "popcount 0" 0 (Bits.popcount64 0L);
  check_int "popcount -1" 64 (Bits.popcount64 (-1L));
  check_int "popcount 0xF0" 4 (Bits.popcount64 0xF0L)

let test_log2 () =
  check_int "log2 1" 0 (Bits.log2_exact 1);
  check_int "log2 4096" 12 (Bits.log2_exact 4096);
  Alcotest.check_raises "log2 of 3" (Invalid_argument "Bits.log2_exact") (fun () ->
      ignore (Bits.log2_exact 3))

let test_prng_deterministic () =
  let a = Prng.create 42L and b = Prng.create 42L in
  for _ = 1 to 100 do
    check_i64 "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done;
  let c = Prng.create 43L in
  check_bool "different seed differs" true (Prng.next_int64 a <> Prng.next_int64 c)

let test_stats () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "overhead" 10.0 (Stats.overhead_pct ~base:100.0 ~measured:110.0);
  Alcotest.(check (float 1e-6)) "geomean" 2.0 (Stats.geomean [ 1.0; 4.0 ])

(* property tests *)
let prop_insert_extract =
  QCheck.Test.make ~count:500 ~name:"insert then extract returns field"
    QCheck.(triple int64 (int_bound 57) (int_range 1 6))
    (fun (v, lo, width) ->
      let field = Int64.logand 0x2AL (Bits.mask_bits width) in
      Bits.extract (Bits.insert v ~lo ~width ~field) ~lo ~width = field)

let prop_sign_extend_idempotent =
  QCheck.Test.make ~count:500 ~name:"sign_extend is idempotent"
    QCheck.(pair int64 (int_range 1 63))
    (fun (v, w) ->
      let s = Bits.sign_extend v ~width:w in
      Bits.sign_extend s ~width:w = s)

let prop_ucompare_antisym =
  QCheck.Test.make ~count:500 ~name:"ucompare is antisymmetric"
    QCheck.(pair int64 int64)
    (fun (a, b) -> compare (Bits.ucompare a b) 0 = -compare (Bits.ucompare b a) 0)

let prop_align_up_bounds =
  QCheck.Test.make ~count:500 ~name:"align_up lands on a multiple >= x"
    QCheck.(pair (int_bound 1_000_000) (int_range 0 12))
    (fun (x, sh) ->
      let a = 1 lsl sh in
      let r = Bits.align_up x a in
      r >= x && r mod a = 0 && r - x < a)

let suite =
  [
    Alcotest.test_case "masks" `Quick test_masks;
    Alcotest.test_case "extract/insert" `Quick test_extract_insert;
    Alcotest.test_case "sign extension" `Quick test_sign_extend;
    Alcotest.test_case "immediate ranges" `Quick test_fits;
    Alcotest.test_case "unsigned comparison" `Quick test_unsigned_compare;
    Alcotest.test_case "alignment" `Quick test_align;
    Alcotest.test_case "popcount" `Quick test_popcount;
    Alcotest.test_case "log2_exact" `Quick test_log2;
    Alcotest.test_case "prng determinism" `Quick test_prng_deterministic;
    Alcotest.test_case "stats" `Quick test_stats;
    Seeded.to_alcotest prop_insert_extract;
    Seeded.to_alcotest prop_sign_extend_idempotent;
    Seeded.to_alcotest prop_ucompare_antisym;
    Seeded.to_alcotest prop_align_up_bounds;
  ]
