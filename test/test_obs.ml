(* Observability tests: the tracer/profiler must be a pure side channel
   (bit-identical measurements with and without it), metrics snapshots
   must agree with a recount from the single-step reference engine on
   random programs under every scheme, and the exporters (Chrome JSON,
   text dump, hot-block table) must stay well-formed. *)

module Machine = Roload_machine.Machine
module Pass = Roload_passes.Pass
module System = Core.System
module Event = Roload_obs.Event
module Tracer = Roload_obs.Tracer
module Metrics = Roload_obs.Metrics
module Profile = Roload_obs.Profile

let compile ?(scheme = Pass.Vcall) ~name src =
  Core.Toolchain.compile_exe
    ~options:{ Core.Toolchain.default_options with scheme }
    ~name src

(* virtual dispatch in a loop plus recursion: exercises ld.ro, the
   block cache, both TLBs, syscalls and printing in one small program *)
let workload_src =
  {|
int fib(int n) {
  if (n < 2) return n;
  return fib(n - 1) + fib(n - 2);
}
class A { virtual int m(int x) { return x + 1; } };
class B : A { virtual int m(int x) { return x * 2; } };
int main() {
  A *p = new B;
  int total = 0;
  int i;
  for (i = 0; i < 20; i = i + 1) { total = total + p->m(i); }
  print_int(total + fib(12));
  print_char('\n');
  return 0;
}
|}

(* ---------- tracing off == tracing on, for every engine ---------- *)

let test_trace_is_side_channel () =
  let exe = compile ~name:"obs_side" workload_src in
  List.iter
    (fun (engine, ctx) ->
      let plain = System.run ~engine ~variant:System.Processor_kernel_modified exe in
      let tracer = Tracer.create () in
      let traced =
        System.run ~engine ~tracer ~profile:true
          ~variant:System.Processor_kernel_modified exe
      in
      Test_engine.check_same_measurement (ctx ^ ": traced vs untraced") plain traced;
      (* [core_equal], not structural equality: attaching a tracer makes
         the traced engine fall back to per-instruction dispatch, so the
         trace_* convenience counters legitimately differ — every
         architectural counter must not *)
      if not (Metrics.core_equal plain.System.metrics traced.System.metrics) then
        Alcotest.failf "%s: metrics differ between traced and untraced runs" ctx;
      if Tracer.emitted tracer = 0 then
        Alcotest.failf "%s: tracer attached but no events emitted" ctx)
    [ (Machine.Block_cached, "block"); (Machine.Single_step, "single");
      (Machine.Traced, "traced") ]

(* ---------- the ring buffer itself ---------- *)

let test_ring_buffer () =
  let tr = Tracer.create ~capacity:4 () in
  let now = ref 0L in
  Tracer.set_clock tr (fun () -> !now);
  for i = 1 to 6 do
    now := Int64.of_int (10 * i);
    Tracer.emit tr (Event.Block_decode { pa = i })
  done;
  Alcotest.(check int) "length" 4 (Tracer.length tr);
  Alcotest.(check int) "emitted" 6 (Tracer.emitted tr);
  Alcotest.(check int) "dropped" 2 (Tracer.dropped tr);
  let seen = ref [] in
  Tracer.iter tr (fun ~ts ev ->
      match ev with
      | Event.Block_decode { pa } -> seen := (ts, pa) :: !seen
      | _ -> Alcotest.fail "unexpected event kind");
  Alcotest.(check (list (pair int64 int)))
    "oldest-first window"
    [ (30L, 3); (40L, 4); (50L, 5); (60L, 6) ]
    (List.rev !seen);
  Tracer.clear tr;
  Alcotest.(check int) "cleared" 0 (Tracer.length tr)

(* ---------- exporters ---------- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let count_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i acc =
    if i + nn > nh then acc
    else if String.sub hay i nn = needle then go (i + nn) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let traced_run () =
  let exe = compile ~name:"obs_export" workload_src in
  let tracer = Tracer.create () in
  let m =
    System.run ~tracer ~profile:true ~variant:System.Processor_kernel_modified exe
  in
  (tracer, m)

let test_chrome_json () =
  let tracer, _ = traced_run () in
  let doc = Tracer.to_chrome_json tracer in
  Alcotest.(check bool) "traceEvents" true (contains doc "\"traceEvents\"");
  Alcotest.(check bool) "instant phase" true (contains doc "\"ph\": \"i\"");
  Alcotest.(check bool) "thread names" true (contains doc "thread_name");
  Alcotest.(check bool) "ld.ro events" true (contains doc "\"ld.ro\"");
  Alcotest.(check bool) "balanced braces" true
    (count_substring doc "{" = count_substring doc "}");
  (* one JSON object per retained event plus the four lane-name
     metadata records *)
  Alcotest.(check int) "event count"
    (Tracer.length tracer + 4)
    (count_substring doc "\"ph\":")

let test_text_dump () =
  let tracer, _ = traced_run () in
  let doc = Tracer.to_text tracer in
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' doc) in
  (* header plus one line per retained event *)
  Alcotest.(check bool) "one line per event" true
    (List.length lines > Tracer.length tracer);
  Alcotest.(check bool) "syscall visible" true (contains doc "syscall:")

let test_profiler () =
  let _, m = traced_run () in
  let blocks = m.System.profile in
  if blocks = [] then Alcotest.fail "profiler returned no blocks";
  let top = Profile.top ~n:5 blocks in
  let rec sorted = function
    | a :: (b :: _ as rest) ->
      (a.Profile.cycles > b.Profile.cycles
      || (a.Profile.cycles = b.Profile.cycles && a.Profile.pa <= b.Profile.pa))
      && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "top sorted by cycles" true (sorted top);
  let total =
    List.fold_left (fun acc b -> Int64.add acc b.Profile.instructions) 0L blocks
  in
  Alcotest.(check bool) "attributes instructions" true (total > 0L);
  Alcotest.(check bool) "within run total" true (total <= m.System.instructions);
  let rendered = Profile.render ~n:3 blocks in
  Alcotest.(check bool) "render has header" true (contains rendered "hot blocks:");
  Alcotest.(check bool) "render has addresses" true (contains rendered "0x")

(* ---------- faults reach the metrics and the trace ---------- *)

let vptr_inject_src =
  {|
class A { virtual int m(int x) { return x + 7; } };
int fake[2];
int main() {
  A *p = new A;
  fake[0] = 0;
  fake[1] = 0;
  *((int *)p) = (int)fake;
  print_int(p->m(1));
  return 0;
}
|}

let test_fault_events () =
  let exe = compile ~scheme:Pass.Vcall ~name:"obs_fault" vptr_inject_src in
  let tracer = Tracer.create () in
  let m = System.run ~tracer ~variant:System.Processor_kernel_modified exe in
  (match m.System.status with
  | Roload_kernel.Process.Killed _ -> ()
  | _ -> Alcotest.failf "vptr injection not killed: %s" (System.status_string m));
  Alcotest.(check bool) "roload fault counted" true
    (Metrics.roload_faults m.System.metrics > 0);
  let doc = Tracer.to_text tracer in
  Alcotest.(check bool) "fault event traced" true (contains doc "ld.ro fault");
  Alcotest.(check bool) "kernel triage traced" true (contains doc "fault:roload")

(* ---------- metrics: block engine == single-step recount ---------- *)

let check_metrics_consistency ctx (m : System.measurement) =
  let mt = m.System.metrics in
  let chk name a b = Alcotest.(check int) (ctx ^ ": " ^ name) a b in
  Alcotest.(check int64)
    (ctx ^ ": instructions")
    m.System.instructions mt.Metrics.instructions;
  Alcotest.(check int64) (ctx ^ ": cycles") m.System.cycles mt.Metrics.cycles;
  chk "roloads" m.System.roloads_executed mt.Metrics.roloads;
  chk "key classes sum to roloads"
    (mt.Metrics.roload_key0 + mt.Metrics.roload_vtable_unified
   + mt.Metrics.roload_typed + mt.Metrics.roload_return_sites)
    mt.Metrics.roloads;
  chk "icache accesses" m.System.icache.System.accesses
    (mt.Metrics.icache_hits + mt.Metrics.icache_misses);
  chk "dcache accesses" m.System.dcache.System.accesses
    (mt.Metrics.dcache_hits + mt.Metrics.dcache_misses);
  chk "itlb accesses" m.System.itlb.System.accesses
    (mt.Metrics.itlb_hits + mt.Metrics.itlb_misses);
  chk "dtlb accesses" m.System.dtlb.System.accesses
    (mt.Metrics.dtlb_hits + mt.Metrics.dtlb_misses)

let prop_metrics_agree =
  QCheck.Test.make ~count:15
    ~name:"metrics: block & traced snapshots == single-step recount"
    Test_engine.arb_case
    (fun (src, scheme) ->
      let exe =
        Core.Toolchain.compile_exe
          ~options:{ Core.Toolchain.default_options with scheme }
          ~name:"rand_obs" src
      in
      let ctx = Pass.scheme_name scheme in
      let variant = System.Processor_kernel_modified in
      let blocked = System.run ~engine:Machine.Block_cached ~variant exe in
      let stepped = System.run ~engine:Machine.Single_step ~variant exe in
      let traced =
        Test_engine.with_hot_threshold 1 (fun () ->
            System.run ~engine:Machine.Traced ~variant exe)
      in
      check_metrics_consistency (ctx ^ "/block") blocked;
      check_metrics_consistency (ctx ^ "/single") stepped;
      check_metrics_consistency (ctx ^ "/traced") traced;
      Alcotest.(check string)
        (ctx ^ ": engine tags")
        "block/single/traced"
        (blocked.System.metrics.Metrics.engine ^ "/"
        ^ stepped.System.metrics.Metrics.engine
        ^ "/" ^ traced.System.metrics.Metrics.engine);
      List.iter
        (fun (other : System.measurement) ->
          if not (Metrics.core_equal other.System.metrics stepped.System.metrics) then
            Alcotest.failf "%s: metrics diverge between engines:\n%s\nvs\n%s" ctx
              (Metrics.to_json other.System.metrics)
              (Metrics.to_json stepped.System.metrics))
        [ blocked; traced ];
      true)

let test_metrics_json () =
  let _, m = traced_run () in
  let doc = Metrics.to_json m.System.metrics in
  Alcotest.(check bool) "has cycles" true (contains doc "\"cycles\":");
  (match Roload_util.Json.scan_int64_values ~key:"cycles" doc with
  | [ c ] -> Alcotest.(check int64) "cycles scan" m.System.cycles c
  | other -> Alcotest.failf "expected one cycles value, got %d" (List.length other));
  let labeled =
    [ { Metrics.workload = "w\"1"; scheme = "vcall/full"; m = m.System.metrics } ]
  in
  let log = Metrics.log_to_json labeled in
  Alcotest.(check bool) "log escapes workload" true (contains log "w\\\"1");
  Alcotest.(check bool) "log has scheme" true (contains log "vcall/full")

let suite =
  [
    Alcotest.test_case "tracing is a pure side channel" `Quick
      test_trace_is_side_channel;
    Alcotest.test_case "ring buffer window + drop accounting" `Quick test_ring_buffer;
    Alcotest.test_case "chrome trace export" `Quick test_chrome_json;
    Alcotest.test_case "text trace export" `Quick test_text_dump;
    Alcotest.test_case "hot-block profiler" `Quick test_profiler;
    Alcotest.test_case "faults reach metrics and trace" `Quick test_fault_events;
    Alcotest.test_case "metrics snapshot json" `Quick test_metrics_json;
    Seeded.to_alcotest prop_metrics_agree;
  ]
