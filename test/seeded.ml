(* The one seeded-RNG convention for every randomized test.

   Nothing under test/ (or bin/roload_fuzzer) ever calls
   [Random.self_init]: qcheck tests draw from this fixed-seed state so a
   red run replays bit-for-bit, and roload-fuzz derives every case from
   its --seed the same way.  The seed appears in failure output (qcheck
   prints the counterexample; the fuzzer prints a replay line), so a
   failure elsewhere can always be pinned back to it. *)

let qcheck_seed = 0x1005ead

let to_alcotest test =
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| qcheck_seed |])
    test
