(* Linker tests: layout, key grouping, relocation application, synthetic
   region symbols, error cases, and image codec round-trips. *)

module Linker = Roload_link.Linker
module Exe = Roload_obj.Exe
module Parser = Roload_asm.Asm_parser
module Assemble = Roload_asm.Assemble
module Perm = Roload_mem.Perm

let obj_of text = Assemble.assemble (Parser.parse text)

let prog = {|
.text
_start:
  la a0, table
  ld a1, 0(a0)
  li a7, 93
  ecall
.section .rodata.key.5
table:
  .quad 1234
.section .rodata.key.9
other:
  .quad 5678
.data
var:
  .quad 42
.bss
buf:
  .zero 64
|}

let test_layout_keys_separate_pages () =
  let exe = Linker.link [ obj_of prog ] in
  let seg name = List.find (fun s -> s.Exe.name = name) exe.Exe.segments in
  let k5 = seg "rodata.key.5" and k9 = seg "rodata.key.9" in
  Alcotest.(check int) "key 5" 5 k5.Exe.key;
  Alcotest.(check int) "key 9" 9 k9.Exe.key;
  Alcotest.(check bool) "different pages" true
    (k5.Exe.vaddr / Exe.page <> k9.Exe.vaddr / Exe.page);
  Alcotest.(check bool) "page aligned" true (k5.Exe.vaddr mod Exe.page = 0);
  let text = seg "text" in
  Alcotest.(check bool) "text executable" true text.Exe.perms.Perm.x;
  Alcotest.(check bool) "keyed not executable" false k5.Exe.perms.Perm.x

let test_merged_layout_when_not_separate () =
  let options = { Linker.default_options with separate_code = false } in
  let exe = Linker.link ~options [ obj_of prog ] in
  let names = List.map (fun s -> s.Exe.name) exe.Exe.segments in
  Alcotest.(check bool) "merged segment exists" true (List.mem "text+rodata" names);
  Alcotest.(check bool) "no keyed segment" false
    (List.exists (fun s -> s.Exe.key <> 0) exe.Exe.segments)

let test_relocation_values () =
  let exe = Linker.link [ obj_of prog ] in
  let table_addr = Exe.find_symbol_exn exe "table" in
  (* run it: a1 must hold the quad at [table] = 1234, and exit code is
     1234 land 0xff via a7? — simpler: read memory through the image *)
  let seg = List.find (fun s -> s.Exe.name = "rodata.key.5") exe.Exe.segments in
  let off = table_addr - seg.Exe.vaddr in
  let b = Bytes.of_string seg.Exe.data in
  Alcotest.(check int64) "abs64 applied" 1234L (Bytes.get_int64_le b off)

let test_ro_region_symbols () =
  let exe = Linker.link [ obj_of prog ] in
  let ro_start = Exe.find_symbol_exn exe "__ro_start" in
  let ro_end = Exe.find_symbol_exn exe "__ro_end" in
  Alcotest.(check bool) "ro region non-empty" true (ro_end > ro_start);
  let table = Exe.find_symbol_exn exe "table" in
  let other = Exe.find_symbol_exn exe "other" in
  Alcotest.(check bool) "table in ro region" true (table >= ro_start && table < ro_end);
  Alcotest.(check bool) "other in ro region" true (other >= ro_start && other < ro_end)

let test_undefined_symbol () =
  match Linker.link [ obj_of ".text\n_start:\n  call missing\n" ] with
  | exception Linker.Error _ -> ()
  | _ -> Alcotest.fail "undefined symbol must be a link error"

let test_duplicate_symbol () =
  let a = obj_of ".text\n_start:\n  ret\nshared:\n  ret\n" in
  let b = obj_of ".text\nshared:\n  ret\n" in
  match Linker.link [ a; b ] with
  | exception Linker.Error _ -> ()
  | _ -> Alcotest.fail "duplicate symbol must be a link error"

let test_missing_entry () =
  match Linker.link [ obj_of ".text\nnot_start:\n  ret\n" ] with
  | exception Linker.Error _ -> ()
  | _ -> Alcotest.fail "missing _start must be a link error"

let test_cross_object_call () =
  let a = obj_of ".text\n_start:\n  call helper\n  li a7, 93\n  ecall\n" in
  let b = obj_of ".text\nhelper:\n  li a0, 99\n  ret\n" in
  let exe = Linker.link [ a; b ] in
  let machine = Roload_machine.Machine.create Roload_machine.Config.default in
  let kernel = Roload_kernel.Kernel.create ~machine ~config:Roload_kernel.Kernel.default_config in
  let _p, outcome = Roload_kernel.Kernel.exec kernel exe in
  match outcome.Roload_kernel.Kernel.status with
  | Roload_kernel.Process.Exited 99 -> ()
  | _ -> Alcotest.fail "cross-object call failed"

let test_exe_codec_roundtrip () =
  let exe = Linker.link [ obj_of prog ] in
  let bytes = Exe.to_bytes exe in
  let exe2 = Exe.of_bytes bytes in
  Alcotest.(check int) "entry" exe.Exe.entry exe2.Exe.entry;
  Alcotest.(check int) "segments" (List.length exe.Exe.segments) (List.length exe2.Exe.segments);
  List.iter2
    (fun (a : Exe.segment) (b : Exe.segment) ->
      Alcotest.(check string) "name" a.Exe.name b.Exe.name;
      Alcotest.(check int) "vaddr" a.Exe.vaddr b.Exe.vaddr;
      Alcotest.(check int) "key" a.Exe.key b.Exe.key;
      Alcotest.(check string) "data" a.Exe.data b.Exe.data)
    exe.Exe.segments exe2.Exe.segments;
  Alcotest.(check int) "symbols" (List.length exe.Exe.symbols) (List.length exe2.Exe.symbols)

let test_exe_codec_rejects_garbage () =
  match Exe.of_bytes "NOPE....." with
  | exception Exe.Bad_image _ -> ()
  | _ -> Alcotest.fail "bad magic must be rejected"

let prop_codec_roundtrip =
  QCheck.Test.make ~count:50 ~name:"exe codec round-trips arbitrary segments"
    QCheck.(small_list (pair small_string (int_bound 512)))
    (fun segs ->
      let segments =
        List.mapi
          (fun i (data, extra) ->
            { Exe.name = Printf.sprintf "seg%d" i; vaddr = (i + 1) * 4096; data;
              mem_size = String.length data + extra; perms = Perm.rw; key = i land 1023 })
          segs
      in
      let exe = Exe.make ~entry:4096 ~segments ~symbols:[ ("a", 4096) ] in
      Exe.of_bytes (Exe.to_bytes exe) = exe)

(* layout invariants over real compiled programs: segments are
   page-aligned, non-overlapping, and keyed segments are read-only *)
let test_layout_invariants_on_real_programs () =
  List.iter
    (fun scheme ->
      let b = List.hd Roload_workloads.Spec_suite.cxx_benchmarks in
      let options = { Core.Toolchain.default_options with scheme } in
      let exe =
        Core.Toolchain.compile_exe ~options ~name:b.Roload_workloads.Spec_suite.name
          (b.Roload_workloads.Spec_suite.source ~scale:1)
      in
      let segs =
        List.sort (fun a b -> compare a.Exe.vaddr b.Exe.vaddr) exe.Exe.segments
      in
      let rec check = function
        | a :: (b :: _ as rest) ->
          Alcotest.(check bool) "no overlap" true (a.Exe.vaddr + a.Exe.mem_size <= b.Exe.vaddr);
          check rest
        | _ -> ()
      in
      check segs;
      List.iter
        (fun s ->
          Alcotest.(check bool) "page aligned" true (s.Exe.vaddr mod Exe.page = 0);
          Alcotest.(check bool) "data fits mem_size" true
            (String.length s.Exe.data <= s.Exe.mem_size);
          if s.Exe.key <> 0 then begin
            Alcotest.(check bool) "keyed is readable" true s.Exe.perms.Perm.r;
            Alcotest.(check bool) "keyed not writable" false s.Exe.perms.Perm.w;
            Alcotest.(check bool) "keyed not executable" false s.Exe.perms.Perm.x
          end)
        segs;
      (* entry must land in an executable segment *)
      match Exe.segment_containing exe exe.Exe.entry with
      | Some s -> Alcotest.(check bool) "entry in text" true s.Exe.perms.Perm.x
      | None -> Alcotest.fail "entry unmapped")
    [ Roload_passes.Pass.Unprotected; Roload_passes.Pass.Vcall; Roload_passes.Pass.Icall;
      Roload_passes.Pass.Retcall ]

let suite =
  [
    Alcotest.test_case "keys land on separate pages" `Quick test_layout_keys_separate_pages;
    Alcotest.test_case "layout invariants (real programs)" `Quick
      test_layout_invariants_on_real_programs;
    Alcotest.test_case "no separate-code merges ro into text" `Quick test_merged_layout_when_not_separate;
    Alcotest.test_case "relocation values" `Quick test_relocation_values;
    Alcotest.test_case "__ro_start/__ro_end" `Quick test_ro_region_symbols;
    Alcotest.test_case "undefined symbol" `Quick test_undefined_symbol;
    Alcotest.test_case "duplicate symbol" `Quick test_duplicate_symbol;
    Alcotest.test_case "missing entry" `Quick test_missing_entry;
    Alcotest.test_case "cross-object call" `Quick test_cross_object_call;
    Alcotest.test_case "exe codec roundtrip" `Quick test_exe_codec_roundtrip;
    Alcotest.test_case "exe codec rejects garbage" `Quick test_exe_codec_rejects_garbage;
    Seeded.to_alcotest prop_codec_roundtrip;
  ]
